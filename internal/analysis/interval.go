package analysis

import (
	"fmt"
	"go/types"
	"math"
	"math/bits"
	"strconv"
)

// This file implements the value-range abstract domain used by the
// boundscheck, overflowconv and divmod analyzers: intervals over 64-bit
// integers whose endpoints may be symbolic — a constant offset from a
// local variable ("n-1") or from the length of a local slice
// ("len(vs)-1"). Symbolic endpoints are what make slice-index proofs
// work without a full relational domain: the canonical hot loop
//
//	for i := 0; i < len(s); i++ { ... s[i] ... }
//
// refines i to [0, len(s)-1] on the loop's true edge, and the prover
// (rangeanal.go) discharges s[i] by comparing the symbolic endpoints
// directly instead of collapsing them to ±inf first.
//
// The lattice has unbounded height (constant endpoints can grow
// indefinitely around a loop), so rangeanal pairs it with widening at
// retreating edges (endpoints that keep moving jump to ±inf) followed by
// bounded narrowing passes, the classic interval-domain recipe.

// Bound is one interval endpoint: K + base, where the base is nothing
// (a plain constant), a local integer variable Sym, or len(Sym) for a
// local slice/string/array Sym; or an infinity when Inf is nonzero.
type Bound struct {
	// Inf is -1 for -inf, +1 for +inf, 0 for a finite endpoint.
	Inf int
	// K is the constant part (the whole value when Sym is nil).
	K int64
	// Sym, when non-nil, makes the endpoint symbolic: K+Sym, or
	// K+len(Sym) when IsLen is set. Only non-escaping local variables
	// are ever used as symbols; rangeanal drops bounds whose symbol is
	// reassigned.
	Sym   types.Object
	IsLen bool
}

// NegInf and PosInf are the infinite endpoints.
func NegInf() Bound { return Bound{Inf: -1} }
func PosInf() Bound { return Bound{Inf: +1} }

// ConstBound is the concrete endpoint k.
func ConstBound(k int64) Bound { return Bound{K: k} }

// SymBound is the endpoint k+sym (or k+len(sym) when isLen is set).
func SymBound(sym types.Object, k int64, isLen bool) Bound {
	return Bound{K: k, Sym: sym, IsLen: isLen}
}

func (b Bound) isFinite() bool  { return b.Inf == 0 }
func (b Bound) isConst() bool   { return b.Inf == 0 && b.Sym == nil }
func (b Bound) refs(o types.Object) bool { return b.Sym != nil && b.Sym == o }

// AddK shifts a finite endpoint by k, saturating to the matching
// infinity on int64 overflow (the conservative direction either way,
// since an overflowed endpoint is only ever used as "don't know").
func (b Bound) AddK(k int64) Bound {
	if b.Inf != 0 {
		return b
	}
	s, ok := addInt64(b.K, k)
	if !ok {
		if (b.K > 0) == (k > 0) && b.K > 0 {
			return PosInf()
		}
		return NegInf()
	}
	b.K = s
	return b
}

func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a {
		return 0, false
	}
	return p, true
}

// leqBound reports that a <= b is provable without environment lookups.
// Decidable cases: infinities, same-symbol endpoints (compare offsets),
// and a constant versus a len-symbol (len >= 0, so k1 <= k2+len(x)
// whenever k1 <= k2). Everything else is "unknown", reported as false.
func leqBound(a, b Bound) bool {
	switch {
	case a.Inf == -1 || b.Inf == +1:
		return true
	case a.Inf == +1:
		return b.Inf == +1
	case b.Inf == -1:
		return false
	case a.Sym == b.Sym && a.IsLen == b.IsLen:
		return a.K <= b.K
	case a.Sym == nil && b.Sym != nil && b.IsLen:
		return a.K <= b.K // len(x) >= 0
	case a.Sym != nil && a.IsLen && b.Sym == nil:
		// len(x) <= maxSliceLen, so len(x)+k1 <= k2 once
		// maxSliceLen+k1 <= k2. This keeps symbolic length bounds
		// alive through meets with integer type ranges.
		if s, ok := addInt64(maxSliceLen, a.K); ok {
			return s <= b.K
		}
		return false
	}
	return false
}

// maxSliceLen bounds len() of any slice or string: lengths are ints.
const maxSliceLen = int64(math.MaxInt64) >> (64 - intWidth)

func boundEq(a, b Bound) bool { return a == b }

// joinLo is the lower endpoint of the union: the provable minimum, or
// -inf when the endpoints are incomparable.
func joinLo(a, b Bound) Bound {
	if leqBound(a, b) {
		return a
	}
	if leqBound(b, a) {
		return b
	}
	return NegInf()
}

// joinHi is the upper endpoint of the union: the provable maximum, or
// +inf when the endpoints are incomparable.
func joinHi(a, b Bound) Bound {
	if leqBound(a, b) {
		return b
	}
	if leqBound(b, a) {
		return a
	}
	return PosInf()
}

// meetLo tightens a lower endpoint with new knowledge b (intersection).
// When the endpoints are incomparable both are sound; keep the incoming
// refinement — it is the fresher fact, and rangeanal preserves the older
// one through side channels (the len-link on assignments).
func meetLo(a, b Bound) Bound {
	if leqBound(b, a) {
		return a
	}
	return b
}

func meetHi(a, b Bound) Bound {
	if leqBound(a, b) {
		return a
	}
	return b
}

// Interval is a (possibly symbolic) integer range [Lo, Hi]. The zero
// value is the point interval [0, 0]. An interval with Lo > Hi denotes
// an infeasible path; callers never need to test for that — facts on a
// dead edge prove anything, which is the sound direction.
type Interval struct {
	Lo, Hi Bound
}

// Full is the unconstrained interval (-inf, +inf).
func Full() Interval { return Interval{Lo: NegInf(), Hi: PosInf()} }

// Point is the single-value interval [k, k].
func Point(k int64) Interval { return Interval{Lo: ConstBound(k), Hi: ConstBound(k)} }

// IsFull reports the interval carries no information.
func (iv Interval) IsFull() bool { return iv.Lo.Inf == -1 && iv.Hi.Inf == +1 }

// Join is the lattice join (smallest representable superset).
func (iv Interval) Join(o Interval) Interval {
	return Interval{Lo: joinLo(iv.Lo, o.Lo), Hi: joinHi(iv.Hi, o.Hi)}
}

// Meet intersects with new knowledge, preferring the incoming endpoint
// when symbolic endpoints are incomparable (see meetLo).
func (iv Interval) Meet(o Interval) Interval {
	return Interval{Lo: meetLo(iv.Lo, o.Lo), Hi: meetHi(iv.Hi, o.Hi)}
}

// Widen jumps endpoints that moved since old to ±inf — the standard
// interval widening that bounds fixpoint iteration on loops.
func (iv Interval) Widen(merged Interval) Interval {
	w := merged
	if !boundEq(iv.Lo, merged.Lo) {
		w.Lo = NegInf()
	}
	if !boundEq(iv.Hi, merged.Hi) {
		w.Hi = PosInf()
	}
	return w
}

// Add is interval addition. Symbolic endpoints survive addition of a
// constant endpoint; adding two symbolic endpoints loses to infinity.
func (iv Interval) Add(o Interval) Interval {
	return Interval{Lo: addBound(iv.Lo, o.Lo, -1), Hi: addBound(iv.Hi, o.Hi, +1)}
}

func addBound(a, b Bound, dir int) Bound {
	inf := Bound{Inf: dir}
	if a.Inf != 0 || b.Inf != 0 {
		if a.Inf == dir || b.Inf == dir || a.Inf != 0 && b.Inf != 0 {
			return inf
		}
		// finite + opposite infinity
		return Bound{Inf: -dir}
	}
	switch {
	case a.Sym == nil:
		return b.AddK(a.K)
	case b.Sym == nil:
		return a.AddK(b.K)
	}
	return inf // sym + sym: not representable
}

// Sub is interval subtraction; same-symbol endpoints cancel, which is
// what proves `hi - lo` style extents.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{Lo: subBound(iv.Lo, o.Hi, -1), Hi: subBound(iv.Hi, o.Lo, +1)}
}

func subBound(a, b Bound, dir int) Bound {
	if a.Inf != 0 || b.Inf != 0 {
		if a.Inf == dir || b.Inf == -dir || a.Inf != 0 && b.Inf != 0 {
			return Bound{Inf: dir}
		}
		return Bound{Inf: -dir}
	}
	switch {
	case b.Sym == nil:
		if b.K == math.MinInt64 {
			return Bound{Inf: dir} // -MinInt64 is unrepresentable
		}
		return a.AddK(-b.K)
	case a.Sym == b.Sym && a.IsLen == b.IsLen:
		d, ok := addInt64(a.K, -b.K)
		if !ok {
			return Bound{Inf: dir}
		}
		return ConstBound(d)
	}
	return Bound{Inf: dir}
}

// Neg negates the interval.
func (iv Interval) Neg() Interval {
	return Point(0).Sub(iv)
}

// Mul multiplies; only concrete endpoints are tracked.
func (iv Interval) Mul(o Interval) Interval {
	if !iv.Lo.isConst() || !iv.Hi.isConst() || !o.Lo.isConst() || !o.Hi.isConst() {
		// One common symbolic case matters for addressing math: a
		// non-negative symbolic range times a non-negative constant
		// range keeps a zero lower bound.
		if leqBound(ConstBound(0), iv.Lo) && leqBound(ConstBound(0), o.Lo) {
			return Interval{Lo: ConstBound(0), Hi: PosInf()}
		}
		return Full()
	}
	vals := make([]int64, 0, 4)
	for _, a := range [2]int64{iv.Lo.K, iv.Hi.K} {
		for _, b := range [2]int64{o.Lo.K, o.Hi.K} {
			p, ok := mulInt64(a, b)
			if !ok {
				return Full()
			}
			vals = append(vals, p)
		}
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		lo, hi = min(lo, v), max(hi, v)
	}
	return Interval{Lo: ConstBound(lo), Hi: ConstBound(hi)}
}

// Div is integer division (Go truncated semantics). For a non-negative
// dividend and a positive divisor the quotient never exceeds the
// dividend, which keeps symbolic upper bounds alive through `x / 2`.
func (iv Interval) Div(o Interval) Interval {
	// Fully concrete with a positive divisor: exact corner combination.
	// (Negative divisors are skipped so MinInt64 / -1 cannot arise.)
	if iv.Lo.isConst() && iv.Hi.isConst() && o.Lo.isConst() && o.Hi.isConst() &&
		o.Lo.K > 0 {
		vals := []int64{iv.Lo.K / o.Lo.K, iv.Lo.K / o.Hi.K, iv.Hi.K / o.Lo.K, iv.Hi.K / o.Hi.K}
		lo, hi := vals[0], vals[0]
		for _, v := range vals[1:] {
			lo, hi = min(lo, v), max(hi, v)
		}
		return Interval{Lo: ConstBound(lo), Hi: ConstBound(hi)}
	}
	if leqBound(ConstBound(1), o.Lo) && leqBound(ConstBound(0), iv.Lo) {
		return Interval{Lo: ConstBound(0), Hi: iv.Hi}
	}
	return Full()
}

// Rem is the remainder x % y. For y with a positive lower bound the
// result of a non-negative x lies in [0, hi(y)-1] — symbolically too,
// which proves `i % n` indexing into an n-element table.
func (iv Interval) Rem(o Interval) Interval {
	if leqBound(ConstBound(1), o.Lo) {
		hi := o.Hi.AddK(-1)
		if leqBound(ConstBound(0), iv.Lo) {
			// 0 <= x%y <= min(x, y-1)
			return Interval{Lo: ConstBound(0), Hi: meetHi(iv.Hi, hi)}
		}
		return Interval{Lo: negBound(hi), Hi: hi}
	}
	return Full()
}

func negBound(b Bound) Bound {
	if b.Inf != 0 {
		return Bound{Inf: -b.Inf}
	}
	if b.Sym != nil {
		return Bound{Inf: -1} // -(k+sym): not representable; callers want a lower bound
	}
	if b.K == math.MinInt64 {
		return PosInf()
	}
	return ConstBound(-b.K)
}

// Shl is x << s for non-negative x and a known shift range. A shift
// whose result could exceed 62 bits may wrap at the concrete width, so
// the whole interval degrades to Full then.
func (iv Interval) Shl(o Interval) Interval {
	if !leqBound(ConstBound(0), iv.Lo) || !o.Lo.isConst() || !o.Hi.isConst() ||
		o.Lo.K < 0 || o.Hi.K > 62 {
		return Full()
	}
	if !iv.Hi.isConst() || iv.Hi.K != 0 && bits.Len64(uint64(iv.Hi.K)) > 62-int(o.Hi.K) {
		return Full() // may wrap at the concrete width (sign included)
	}
	lo := ConstBound(0)
	if iv.Lo.isConst() {
		lo = ConstBound(iv.Lo.K << o.Lo.K)
	}
	return Interval{Lo: lo, Hi: ConstBound(iv.Hi.K << o.Hi.K)}
}

// Shr is x >> s for non-negative x: the result shrinks toward zero, so
// [0, hi(x)] is always sound and keeps symbolic upper bounds.
func (iv Interval) Shr(o Interval) Interval {
	if !leqBound(ConstBound(0), iv.Lo) {
		return Full()
	}
	return Interval{Lo: ConstBound(0), Hi: iv.Hi}
}

// And is bitwise x & y. For non-negative operands the result is bounded
// by each operand — the mask idiom `h & (n-1)`.
func (iv Interval) And(o Interval) Interval {
	if leqBound(ConstBound(0), iv.Lo) && leqBound(ConstBound(0), o.Lo) {
		return Interval{Lo: ConstBound(0), Hi: meetHi(iv.Hi, o.Hi)}
	}
	return Full()
}

// OrXor covers |, ^ and &^: for non-negative operands the result is
// non-negative (no tight upper bound is tracked).
func (iv Interval) OrXor(o Interval) Interval {
	if leqBound(ConstBound(0), iv.Lo) && leqBound(ConstBound(0), o.Lo) {
		return Interval{Lo: ConstBound(0), Hi: PosInf()}
	}
	return Full()
}

// String renders the interval for diagnostics: "[0, len(vs)-1]".
func (iv Interval) String() string {
	return "[" + iv.Lo.String() + ", " + iv.Hi.String() + "]"
}

func (b Bound) String() string {
	switch {
	case b.Inf < 0:
		return "-inf"
	case b.Inf > 0:
		return "+inf"
	case b.Sym == nil:
		return strconv.FormatInt(b.K, 10)
	}
	base := b.Sym.Name()
	if b.IsLen {
		base = "len(" + base + ")"
	}
	switch {
	case b.K > 0:
		return fmt.Sprintf("%s+%d", base, b.K)
	case b.K < 0:
		return fmt.Sprintf("%s%d", base, b.K)
	}
	return base
}

// intWidth is the width of int/uint on the analyzing platform. The
// analyzers prove properties of the binary CI builds and ships (amd64 /
// arm64: 64-bit), and using the host width keeps the tool honest when
// someone does run it on a 32-bit host.
const intWidth = bits.UintSize

// TypeRange returns the representable interval of t for integer basic
// types (named or not), and ok=false otherwise. Unsigned 64-bit ranges
// use +inf as the upper endpoint since MaxUint64 exceeds int64.
func TypeRange(t types.Type) (Interval, bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return Full(), false
	}
	w, signed := intKindWidth(basic.Kind())
	if w < 8 { // 0 for non-integer kinds; also proves w-1 below is a valid shift
		return Full(), false
	}
	if signed {
		if w == 64 {
			return Interval{Lo: ConstBound(math.MinInt64), Hi: ConstBound(math.MaxInt64)}, true
		}
		return Interval{Lo: ConstBound(-(int64(1) << (w - 1))), Hi: ConstBound(int64(1)<<(w-1) - 1)}, true
	}
	if w == 64 {
		return Interval{Lo: ConstBound(0), Hi: PosInf()}, true
	}
	return Interval{Lo: ConstBound(0), Hi: ConstBound(int64(1)<<w - 1)}, true
}

// intKindWidth maps an integer basic kind to (bit width, signedness);
// width 0 for non-integer kinds.
func intKindWidth(k types.BasicKind) (int, bool) {
	switch k {
	case types.Int, types.UntypedInt:
		return intWidth, true
	case types.Int8:
		return 8, true
	case types.Int16:
		return 16, true
	case types.Int32, types.UntypedRune:
		return 32, true
	case types.Int64:
		return 64, true
	case types.Uint, types.Uintptr:
		return intWidth, false
	case types.Uint8:
		return 8, false
	case types.Uint16:
		return 16, false
	case types.Uint32:
		return 32, false
	case types.Uint64:
		return 64, false
	}
	return 0, false
}
