package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkTestPkg type-checks one import-free source file into a Package.
func checkTestPkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pkg.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

func findNode(t *testing.T, cg *CallGraph, name string) *CGNode {
	t.Helper()
	for fn, n := range cg.Nodes {
		if fn.Name() == name && n.Decl != nil {
			return n
		}
	}
	t.Fatalf("no declared node %q in call graph", name)
	return nil
}

func hasEdge(from *CGNode, toName, kind string) bool {
	for _, e := range from.Out {
		if e.Callee.Fn.Name() == toName && (kind == "" || e.Kind == kind) {
			return true
		}
	}
	return false
}

func TestCallGraphStaticAndClosures(t *testing.T) {
	pkg := checkTestPkg(t, `package p

func a() { b() }
func b() {}

// c's closure calls d: flattening attributes the call to c itself.
func c(run func(func())) {
	run(func() { d() })
}
func d() {}

// e references f as a value without calling it.
func e(sink func(func())) { sink(f) }
func f() {}
`)
	cg := BuildCallGraph([]*Package{pkg})
	if !hasEdge(findNode(t, cg, "a"), "b", "static") {
		t.Error("missing static edge a -> b")
	}
	if !hasEdge(findNode(t, cg, "c"), "d", "static") {
		t.Error("closure call not flattened into c (missing c -> d)")
	}
	if !hasEdge(findNode(t, cg, "e"), "f", "ref") {
		t.Error("function-value reference e -> f not recorded")
	}
	if hasEdge(findNode(t, cg, "a"), "d", "") {
		t.Error("spurious edge a -> d")
	}
	// Callers recorded symmetrically.
	bNode := findNode(t, cg, "b")
	if len(bNode.In) != 1 || bNode.In[0].Caller.Fn.Name() != "a" {
		t.Errorf("b.In = %v, want exactly one caller a", bNode.In)
	}
}

func TestCallGraphInterfaceCHA(t *testing.T) {
	pkg := checkTestPkg(t, `package p

type closer interface{ close() }

type fileT struct{}
func (fileT) close() {}

type sockT struct{}
func (*sockT) close() {}

type unrelated struct{}
func (unrelated) open() {}

func shutdown(c closer) { c.close() }
`)
	cg := BuildCallGraph([]*Package{pkg})
	sd := findNode(t, cg, "shutdown")
	// CHA must resolve to both implementations (value and pointer
	// receiver) and not to unrelated types.
	var impls []string
	for _, e := range sd.Out {
		if e.Kind == "interface" && e.Callee.Decl != nil {
			impls = append(impls, e.Callee.Fn.FullName())
		}
	}
	if len(impls) != 2 {
		t.Fatalf("CHA resolved %v, want the two close implementations", impls)
	}
	for _, e := range sd.Out {
		if e.Callee.Fn.Name() == "open" {
			t.Error("CHA reached a method of a non-implementing type")
		}
	}
}

// TestCallGraphDeterministic: two builds over the same package produce
// identical declared-node and edge orders.
func TestCallGraphDeterministic(t *testing.T) {
	src := `package p
func a() { b(); c() }
func b() { c() }
func c() {}
`
	pkg := checkTestPkg(t, src)
	shape := func(cg *CallGraph) []string {
		var out []string
		for _, n := range cg.Declared() {
			out = append(out, n.Fn.Name())
			for _, e := range n.Out {
				out = append(out, n.Fn.Name()+"->"+e.Callee.Fn.Name())
			}
		}
		return out
	}
	first := shape(BuildCallGraph([]*Package{pkg}))
	for i := 0; i < 5; i++ {
		next := shape(BuildCallGraph([]*Package{pkg}))
		if len(next) != len(first) {
			t.Fatalf("build %d: %v != %v", i, next, first)
		}
		for j := range next {
			if next[j] != first[j] {
				t.Fatalf("build %d differs at %d: %v != %v", i, j, next, first)
			}
		}
	}
}

// TestCallGraphSpawnKinds: go statements and defer statements tag their
// call edges so the concurrency analyzers can tell a spawn (callee runs
// on a fresh goroutine) from a sequential call.
func TestCallGraphSpawnKinds(t *testing.T) {
	pkg := checkTestPkg(t, `package p

type srv struct{}

func (s *srv) pump()  {}
func (s *srv) flush() {}

func worker() {}
func cleanup() {}

func run(s *srv) {
	go worker()      // spawned package function
	go s.pump()      // spawned method (method-value syntax at the call)
	defer cleanup()  // deferred package function
	defer s.flush()  // deferred method
	worker()         // and a plain sequential call of the same callee
}
`)
	cg := BuildCallGraph([]*Package{pkg})
	run := findNode(t, cg, "run")
	for _, want := range []struct{ callee, kind string }{
		{"worker", "go"},
		{"pump", "go"},
		{"cleanup", "defer"},
		{"flush", "defer"},
		{"worker", "static"},
	} {
		if !hasEdge(run, want.callee, want.kind) {
			t.Errorf("missing %q edge run -> %s", want.kind, want.callee)
		}
	}
	// The spawn edge must not leak onto the sequential call of pump's
	// sibling: flush is only deferred, never static.
	if hasEdge(run, "flush", "static") {
		t.Error("deferred-only callee flush got a static edge")
	}
}

// TestCallGraphDeferredClosure: a closure spawned or deferred is still
// flattened into the enclosing declaration (its body's calls belong to
// the spawner), and the closure's own callees keep static kinds.
func TestCallGraphDeferredClosure(t *testing.T) {
	pkg := checkTestPkg(t, `package p

func logit() {}
func step()  {}

func orchestrate() {
	defer func() { logit() }()
	go func() { step() }()
}
`)
	cg := BuildCallGraph([]*Package{pkg})
	orch := findNode(t, cg, "orchestrate")
	// Flattening: the literal bodies' calls are attributed to
	// orchestrate, as plain static calls — the go/defer kind belongs to
	// the literal's invocation, and calling a literal adds no edge.
	if !hasEdge(orch, "logit", "static") {
		t.Error("deferred closure's call not flattened into orchestrate")
	}
	if !hasEdge(orch, "step", "static") {
		t.Error("spawned closure's call not flattened into orchestrate")
	}
	if hasEdge(orch, "logit", "defer") || hasEdge(orch, "step", "go") {
		t.Error("closure-internal calls must not inherit the spawn kind")
	}
}

// TestCallGraphMethodValueSpawn: `f := s.m; go f()` records the method
// reference; the spawn-payload resolver (SpawnSites) recovers the callee.
func TestCallGraphMethodValueSpawn(t *testing.T) {
	pkg := checkTestPkg(t, `package p

type srv struct{}

func (s *srv) serve() {}

func launch(s *srv) {
	f := s.serve
	go f()
}
`)
	cg := BuildCallGraph([]*Package{pkg})
	launch := findNode(t, cg, "launch")
	if !hasEdge(launch, "serve", "ref") {
		t.Error("method value s.serve not recorded as a ref edge")
	}
	var decl *ast.FuncDecl
	for _, n := range cg.Declared() {
		if n.Fn.Name() == "launch" {
			decl = n.Decl
		}
	}
	sites := SpawnSites(pkg.TypesInfo, decl)
	if len(sites) != 1 {
		t.Fatalf("SpawnSites found %d sites, want 1", len(sites))
	}
	if sites[0].Callee == nil || sites[0].Callee.Name() != "serve" {
		t.Errorf("spawn payload = %v, want method serve", sites[0].Callee)
	}
}
