package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses src (a file body containing exactly one function
// declaration) and returns its CFG plus the fileset.
func buildTestCFG(t *testing.T, src string) (*CFG, *token.FileSet, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd), fset, fd
		}
	}
	t.Fatal("no function in source")
	return nil, nil, nil
}

// kinds returns the reachable block kinds, entry-first.
func kinds(c *CFG) []string {
	var ks []string
	for _, b := range c.Reachable() {
		ks = append(ks, b.Kind)
	}
	return ks
}

func hasKind(c *CFG, kind string) *Block {
	for _, b := range c.Reachable() {
		if b.Kind == kind {
			return b
		}
	}
	return nil
}

// reaches reports whether to is reachable from from over Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// TestCFGInfiniteForWithBreak: `for { ... break }` has no condition edge
// out of the loop head; exit is reachable only through the break.
func TestCFGInfiniteForWithBreak(t *testing.T) {
	c, _, _ := buildTestCFG(t, `
func f(n int) int {
	s := 0
	for {
		s++
		if s > n {
			break
		}
	}
	return s
}`)
	head := hasKind(c, "for.head")
	if head == nil {
		t.Fatalf("no for.head block in %v", kinds(c))
	}
	// A condition-less for's head must have exactly one successor (the
	// body): falling out of the loop without break is impossible.
	if len(head.Succs) != 1 {
		t.Fatalf("for.head of `for {}` has %d successors, want 1 (body only)", len(head.Succs))
	}
	done := hasKind(c, "for.done")
	if done == nil {
		t.Fatalf("no for.done block (break target) in %v", kinds(c))
	}
	if !reaches(c.Entry, c.Exit) {
		t.Fatal("exit unreachable: break edge missing")
	}
	// The break edge must come from inside the if.then, not from the head.
	for _, p := range done.Preds {
		if p == head {
			t.Fatal("for.done has the loop head as predecessor; `for {}` must not exit via the head")
		}
	}
}

// TestCFGLabeledContinue: `continue outer` from the inner loop must edge
// to the OUTER loop's continuation point, not the inner head.
func TestCFGLabeledContinue(t *testing.T) {
	c, fset, fd := buildTestCFG(t, `
func f(rows [][]int) int {
	s := 0
outer:
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				continue outer
			}
			s += v
		}
	}
	return s
}`)
	// Find the continue statement's block.
	var contPos token.Pos
	ast.Inspect(fd, func(n ast.Node) bool {
		if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.CONTINUE && br.Label != nil {
			contPos = br.Pos()
		}
		return true
	})
	if !contPos.IsValid() {
		t.Fatal("no labeled continue parsed")
	}
	blk := c.BlockOf(contPos)
	if blk == nil {
		t.Fatalf("no reachable block holds the continue at %s", fset.Position(contPos))
	}
	if len(blk.Succs) != 1 {
		t.Fatalf("continue block has %d successors, want 1", len(blk.Succs))
	}
	succ := blk.Succs[0]
	if succ.Kind != "for.post" {
		t.Fatalf("continue outer edges to %s, want the outer loop's for.post", succ)
	}
	// And the inner range head must not be that successor's kind.
	if inner := hasKind(c, "range.head"); inner == nil {
		t.Fatalf("inner range.head missing in %v", kinds(c))
	} else if succ == inner {
		t.Fatal("continue outer wrongly targets the inner loop head")
	}
}

// TestCFGSelectWithDefault: every comm clause and the default are
// successors of the select head; without a default the head has no edge
// straight to done.
func TestCFGSelectWithDefault(t *testing.T) {
	c, _, _ := buildTestCFG(t, `
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case ch <- 1:
		return 1
	default:
		return 0
	}
}`)
	var head *Block
	for _, b := range c.Reachable() {
		for _, s := range b.Succs {
			if strings.HasPrefix(s.Kind, "select.") && s.Kind != "select.done" {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatalf("no select head found in %v", kinds(c))
	}
	var clause, deflt int
	for _, s := range head.Succs {
		switch s.Kind {
		case "select.clause":
			clause++
		case "select.default":
			deflt++
		case "select.done":
			t.Fatal("select head edges straight to done; clauses must be the only paths")
		}
	}
	if clause != 2 || deflt != 1 {
		t.Fatalf("select head has %d clause and %d default successors, want 2 and 1", clause, deflt)
	}

	// Without a default, done must still be created but only clause bodies
	// reach it (here bodies return, so done is unreachable).
	c2, _, _ := buildTestCFG(t, `
func g(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}`)
	if d := hasKind(c2, "select.default"); d != nil {
		t.Fatal("default clause block present without a default case")
	}
}

// TestCFGDeferBeforePanic: an explicit panic statement must route through
// the defer.run chain (reverse registration order) before Exit.
func TestCFGDeferBeforePanic(t *testing.T) {
	c, fset, fd := buildTestCFG(t, `
func f(mu interface{ Unlock() }, log func(string)) {
	defer mu.Unlock()
	defer log("second registered, first run")
	if badState() {
		panic("invariant broken")
	}
	work()
}`)
	if len(c.DeferRuns) != 2 {
		t.Fatalf("DeferRuns = %d blocks, want 2", len(c.DeferRuns))
	}
	// Reverse registration order: log(...) runs before mu.Unlock().
	first, second := c.DeferRuns[0], c.DeferRuns[1]
	if len(first.Nodes) != 1 || len(second.Nodes) != 1 {
		t.Fatalf("defer.run blocks carry %d/%d nodes, want 1/1", len(first.Nodes), len(second.Nodes))
	}
	firstCall := first.Nodes[0].(*ast.CallExpr)
	if sel, ok := firstCall.Fun.(*ast.SelectorExpr); !ok || sel.Sel.Name != "Unlock" {
		// first registered defer is mu.Unlock; first RUN must be log.
		if id, ok := firstCall.Fun.(*ast.Ident); !ok || id.Name != "log" {
			t.Fatalf("first defer.run holds %T, want the log call (reverse registration order)", firstCall.Fun)
		}
	} else {
		t.Fatal("first defer.run holds mu.Unlock; defers must run in reverse registration order")
	}

	// The block containing the panic call must reach Exit only through the
	// defer chain.
	var panicPos token.Pos
	ast.Inspect(fd, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				panicPos = call.Pos()
			}
		}
		return true
	})
	blk := c.BlockOf(panicPos)
	if blk == nil {
		t.Fatalf("no reachable block holds the panic at %s", fset.Position(panicPos))
	}
	if len(blk.Succs) != 1 || blk.Succs[0] != first {
		t.Fatalf("panic block edges to %v, want the defer chain head %s", blk.Succs, first)
	}
	if second.Succs[0] != c.Exit {
		t.Fatalf("defer chain tail edges to %v, want Exit", second.Succs)
	}
}

// TestCFGShortCircuitCond: && splits into separate condition blocks so the
// right operand is evaluated on its own edge.
func TestCFGShortCircuitCond(t *testing.T) {
	c, _, _ := buildTestCFG(t, `
func f(a, b bool) int {
	if a && b {
		return 1
	}
	return 0
}`)
	and := hasKind(c, "cond.and")
	if and == nil {
		t.Fatalf("no cond.and block in %v", kinds(c))
	}
	// The entry block (holding `a`) must have the and-block (holding `b`)
	// as one successor and the else path as the other.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("entry has %d successors, want 2 (b-eval and false path)", len(c.Entry.Succs))
	}
	foundMid := false
	for _, s := range c.Entry.Succs {
		if s == and {
			foundMid = true
		}
	}
	if !foundMid {
		t.Fatal("left operand block does not edge into the right operand block")
	}
}

// TestCFGGotoBackward covers goto to an earlier label forming a loop.
func TestCFGGotoBackward(t *testing.T) {
	c, _, _ := buildTestCFG(t, `
func f(n int) int {
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	return i
}`)
	lb := hasKind(c, "label.loop")
	if lb == nil {
		t.Fatalf("no label block in %v", kinds(c))
	}
	// The goto's block must edge back to the label block.
	back := false
	for _, p := range lb.Preds {
		if p.Kind == "if.then" || reaches(lb, p) {
			back = true
		}
	}
	if !back {
		t.Fatal("goto loop did not create a back edge")
	}
}
