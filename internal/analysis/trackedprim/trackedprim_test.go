package trackedprim_test

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/trackedprim"
)

func TestTrackedPrim(t *testing.T) {
	analysis.RunTest(t, trackedprim.Analyzer, "internal/workloads")
}
