// Package trackedprim protects framework-primitive accounting parity
// (GraphBIG §4.1, the 100-record golden suite): inside an instrumented
// workload path, every graph access must flow through the tracked
// framework primitives (Graph.Neighbors / FindVertex / GetProp / SetProp
// and friends) so that the mem.Tracker observes it. Reading the
// property.View's resolved CSR arrays (Adj/AdjW/InAdj/Degree/EdgeTotal or
// the Nbr/NbrOff/NbrW/InOff/InNbr fields) bypasses the tracker entirely —
// the traversal still computes the right answer while silently producing
// the wrong simulated event stream, which no functional test catches.
//
// Instrumented paths are identified lexically, matching the codebase's
// convention for splitting native and instrumented code:
//
//   - functions whose name ends in "Tracked" (spathTracked, kcoreTracked,
//     bcentrTracked, gcolorTracked, bfsDirOptTracked, ...);
//   - function literals assigned to a TrackedVisit field (the engine's
//     instrumented per-frontier-item callback), whether in a composite
//     literal or by assignment.
//
// View.Verts, Len and IndexOf remain allowed: mapping a dense index back
// to its *property.Vertex is index arithmetic, not a simulated memory
// access, and the legacy implementations did the same.
package trackedprim

import (
	"go/ast"
	"strings"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

var scope = []string{"internal/workloads"}

// banned lists the View methods and fields that read resolved CSR
// adjacency without tracker accounting.
var banned = map[string]bool{
	"Adj": true, "AdjW": true, "InAdj": true, "Degree": true, "EdgeTotal": true,
	"Nbr": true, "NbrOff": true, "NbrW": true, "InOff": true, "InNbr": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "trackedprim",
	Doc:  "forbid raw property.View CSR access inside instrumented (tracked) workload paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPathSuffix(pass.Pkg.Path(), scope...) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil && strings.HasSuffix(n.Name.Name, "Tracked") {
				checkTrackedBody(pass, n.Body)
				return false
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				lit, ok := rhs.(*ast.FuncLit)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				if sel, ok := n.Lhs[i].(*ast.SelectorExpr); ok && sel.Sel.Name == "TrackedVisit" {
					checkTrackedBody(pass, lit.Body)
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && key.Name == "TrackedVisit" {
				if lit, ok := n.Value.(*ast.FuncLit); ok {
					checkTrackedBody(pass, lit.Body)
				}
			}
		}
		return true
	})
	return nil
}

// checkTrackedBody flags every banned View selection in an instrumented
// body, including nested function literals (Neighbors callbacks).
func checkTrackedBody(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !banned[sel.Sel.Name] {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		if analysis.NamedIn(selection.Recv(), "View", "internal/property") {
			pass.Report(sel.Pos(), "raw View.%s access inside an instrumented path bypasses tracker accounting; walk Graph.Neighbors/FindVertex/GetProp instead", sel.Sel.Name)
		}
		return true
	})
}
