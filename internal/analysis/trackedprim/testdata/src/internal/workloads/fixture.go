// Fixture for the trackedprim analyzer: instrumented (Tracked) paths
// must not read the View's resolved CSR arrays.
package workloads

import "github.com/graphbig/graphbig-go/internal/property"

// spec mirrors the engine.Spec shape the analyzer keys on.
type spec struct {
	TrackedVisit func(int32)
}

// Positive: Tracked-suffixed functions are instrumented paths.
func degreeSumTracked(vw *property.View) int64 {
	var s int64
	for i := 0; i < vw.Len(); i++ {
		s += int64(vw.Degree(int32(i))) // want "raw View.Degree access inside an instrumented path"
	}
	return s
}

// Positive: a function literal assigned to a TrackedVisit field.
func buildSpec(vw *property.View) spec {
	var sp spec
	sp.TrackedVisit = func(i int32) {
		for range vw.Adj(i) { // want "raw View.Adj access inside an instrumented path"
		}
	}
	return sp
}

// Positive: the composite-literal form, and a raw field read.
func literalSpec(vw *property.View) spec {
	return spec{
		TrackedVisit: func(i int32) {
			_ = len(vw.Nbr) // want "raw View.Nbr access inside an instrumented path"
		},
	}
}

// Negative: native (untracked) kernels are built on the resolved arrays.
func degreeSumNative(vw *property.View) int64 {
	var s int64
	for i := 0; i < vw.Len(); i++ {
		s += int64(vw.Degree(int32(i)))
	}
	return s
}

// Negative: index bookkeeping (Verts, Len, IndexOf) is allowed inside
// instrumented paths — it is arithmetic, not a simulated memory access.
func indexLookupTracked(vw *property.View) int32 {
	if vw.Len() == 0 {
		return -1
	}
	return vw.IndexOf(vw.Verts[0].ID)
}
