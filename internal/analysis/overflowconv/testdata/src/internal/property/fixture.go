// Fixture for the overflowconv analyzer: width-reducing integer
// conversions need a dominating range guard (or the checked helpers
// built on one).
package property

// Positive: nothing bounds n.
func toID(n int) int32 {
	return int32(n) // want "narrowing conversion int32\\(n\\) from int"
}

// Positive: a 64-bit size into a 32-bit record field.
func toSize(n uint64) uint32 {
	return uint32(n) // want "narrowing conversion uint32\\(n\\) from uint64"
}

// Negative: the checked-helper guard shape — a single dominating
// comparison whose panic edge leaves the conversion's range proven.
func toIDGuarded(n int) int32 {
	if n < 0 || n > 1<<31-1 {
		panic("index overflows int32")
	}
	return int32(n)
}

// Negative: a loop counter inherits its bound's proven range.
func counters(m []int8) []int32 {
	out := make([]int32, 0, len(m))
	if len(m) > 1<<31-1 {
		panic("too long")
	}
	for i := 0; i < len(m); i++ {
		out = append(out, int32(i))
	}
	return out
}

// Negative: widening is always value-preserving.
func widen(x int32) int64 {
	return int64(x)
}

// Negative: same-width sign reinterpretation is deliberate in hashing
// and encoding code.
func reinterpret(x int64) uint64 {
	return uint64(x)
}

// Negative: constant conversions are the type checker's department.
func constants() int32 {
	return int32(7)
}
