// Package overflowconv reports width-reducing integer conversions that
// no dominating guard justifies. GraphBIG's CSR builders narrow int
// loop counters and lengths into the int32/uint32 on-disk and in-memory
// vertex encodings constantly; each such T(x) silently wraps when x
// exceeds T's range, corrupting vertex IDs and offsets instead of
// failing. The value-range analysis discharges the conversions that a
// guard (if n > math.MaxInt32 { ... }), a loop bound, or a length link
// provably covers; everything else is reported with the guarded-helper
// idiom as the fix.
//
// Only width-reducing conversions are checked (int -> int32 yes,
// int64 -> uint64 no): same-width sign flips are deliberate bit
// reinterpretations in hashing and encoding code, and widening is
// always value-preserving. Constant conversions are skipped — the type
// checker already rejects out-of-range constants.
package overflowconv

import (
	"go/ast"
	"go/types"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

var scope = []string{
	"internal/property", "internal/loader", "internal/csr",
	"internal/engine", "internal/concurrent", "internal/mem",
	"internal/workloads",
}

var Analyzer = &analysis.Analyzer{
	Name:      "overflowconv",
	Doc:       "report width-reducing integer conversions without a dominating range guard",
	RunModule: run,
}

func run(mp *analysis.ModulePass) error {
	cg := mp.Module.CallGraph()
	ri := mp.Module.Ranges()
	for _, n := range cg.Declared() {
		if !analysis.HasPathSuffix(n.Pkg.PkgPath, scope...) || n.Decl.Body == nil {
			continue
		}
		info := n.Pkg.TypesInfo
		analysis.WalkUnits(n.Decl, func(m ast.Node, depth int, unit ast.Node) {
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return
			}
			tv, ok := info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return
			}
			if ctv, ok := info.Types[call]; ok && ctv.Value != nil {
				return // constant conversion, checked by the compiler
			}
			src, sok := info.Types[call.Args[0]]
			if !sok || !narrowing(src.Type, tv.Type) {
				return
			}
			fr := ri.ForFunc(n.Pkg, unit)
			env := fr.EnvAt(call.Pos())
			if env == nil {
				return
			}
			if ok, iv := fr.ProveFits(env, call.Args[0], tv.Type); !ok {
				fset := mp.Module.Fset
				msg := "narrowing conversion " + types.TypeString(tv.Type, types.RelativeTo(n.Pkg.Types)) +
					"(" + analysis.ExprString(fset, call.Args[0]) +
					") from " + types.TypeString(src.Type, types.RelativeTo(n.Pkg.Types)) +
					" may wrap silently; guard the range first or use a checked helper (e.g. property.Index32)"
				if analysis.DebugEnabled() {
					msg += "; inferred operand range " + iv.String()
				}
				mp.Report(call.Pos(), "%s", msg)
			}
		})
	}
	return nil
}

// wordBits is the width of int/uint on the build platform.
const wordBits = 32 << (^uint(0) >> 63)

// narrowing reports the conversion src -> dst reduces integer width.
func narrowing(src, dst types.Type) bool {
	sw := intWidth(src)
	dw := intWidth(dst)
	return sw != 0 && dw != 0 && dw < sw
}

// intWidth returns the bit width of an integer basic type, 0 otherwise.
// int/uint/uintptr use the build platform's width, matching the
// compiled artifact CI checks.
func intWidth(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	case types.Int64, types.Uint64:
		return 64
	case types.Int, types.Uint, types.Uintptr:
		return wordBits
	}
	return 0
}
