package overflowconv_test

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/overflowconv"
)

func TestOverflowConv(t *testing.T) {
	analysis.RunTest(t, overflowconv.Analyzer, "internal/property")
}
