// Package escape upgrades hotloop's syntactic allocation heuristic to an
// interprocedural escape analysis. hotloop flags make/new/&composite
// written directly inside a nested (per-edge) loop, but an allocation
// hidden one call away is invisible to it: a hot loop calling a helper
// that returns a fresh slice allocates per edge just the same. This
// analyzer summarizes every declared function in the module — does it
// perform a heap allocation whose value escapes the function (returned,
// stored beyond its frame, captured by a closure, boxed into an
// interface, or passed to a parameter the callee escapes), directly or
// through any chain of callees? — and then reports every call site at
// loop depth >= 2 in internal/engine and internal/workloads whose callee
// carries an escaping-allocation summary.
//
// The intraprocedural half is a flow-insensitive taint analysis: fresh
// allocations and parameters are roots; taint propagates through local
// assignments, derived expressions (index, field, slice, deref, address,
// conversion) and append; sinks are returns, stores through non-local
// l-values, channel sends, closure captures, interface boxing and
// arguments at escaping parameter positions. Values of basic type carry
// no references and never sink. Parameter escape feeds back through call
// sites, so a helper that merely hands its argument to a storing callee
// is itself escaping — the summaries reach a module-wide fixpoint.
// Standard-library callees are assumed non-escaping (the recognized sinks
// cover boxing, which is how allocations usually leak into fmt and
// friends); unresolvable callees (func values, methods of unanalyzed
// types) are conservatively assumed to escape every argument.
package escape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

var scope = []string{"internal/engine", "internal/workloads"}

// hot mirrors hotloop: findings fire at lexical loop depth >= 2.
const hot = 2

var Analyzer = &analysis.Analyzer{
	Name:      "escape",
	Doc:       "report hot-loop calls into functions that heap-allocate and let the allocation escape",
	RunModule: run,
}

// summary is one function's escape behavior.
type summary struct {
	// allocEscapes: calling this function performs (directly or via a
	// callee) a heap allocation that outlives the call.
	allocEscapes bool
	how          string   // sink kind witnessing the direct escape
	chain        []string // call path from this function to the allocator
	// paramEscapes[i]: the value of parameter i escapes this function.
	paramEscapes []bool
}

func name(n *analysis.CGNode) string {
	if n.Fn.Pkg() != nil {
		return n.Fn.Pkg().Name() + "." + n.Fn.Name()
	}
	return n.Fn.Name()
}

func run(mp *analysis.ModulePass) error {
	cg := mp.Module.CallGraph()
	nodes := cg.Declared()

	sums := map[*analysis.CGNode]*summary{}
	for _, n := range nodes {
		sums[n] = &summary{paramEscapes: make([]bool, n.Fn.Signature().Params().Len())}
	}
	nodeOf := map[*types.Func]*analysis.CGNode{}
	for _, n := range nodes {
		nodeOf[n.Fn] = n
	}

	// Module-wide fixpoint: parameter escape feeds call-argument sinks,
	// and callee allocEscapes propagates to callers, so iterate the
	// whole intraprocedural analysis until summaries stabilize.
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if update(n, sums, nodeOf) {
				changed = true
			}
		}
	}

	// Report hot-loop call sites on escaping callees. Interface calls are
	// resolved through the call graph's CHA edges at the same site.
	siteCallees := map[ast.Node][]*analysis.CGNode{}
	for _, n := range nodes {
		for _, e := range n.Out {
			if e.Kind == "ref" || e.Callee.Decl == nil {
				continue
			}
			siteCallees[e.Site] = append(siteCallees[e.Site], e.Callee)
		}
	}
	type finding struct {
		pos token.Pos
		msg string
	}
	seen := map[finding]bool{}
	var findings []finding
	for _, n := range nodes {
		if !analysis.HasPathSuffix(n.Pkg.PkgPath, scope...) || n.Decl.Body == nil {
			continue
		}
		analysis.WalkLoopDepth(n.Decl.Body, func(m ast.Node, depth int) {
			call, ok := m.(*ast.CallExpr)
			if !ok || depth < hot {
				return
			}
			for _, callee := range siteCallees[call] {
				s := sums[callee]
				if !s.allocEscapes {
					continue
				}
				f := finding{
					pos: call.Pos(),
					msg: fmt.Sprintf("call to %s in a nested hot loop allocates per edge: %s (path: %s); hoist the allocation out of the traversal",
						name(callee), s.how, strings.Join(s.chain, " -> ")),
				}
				if !seen[f] {
					seen[f] = true
					findings = append(findings, f)
				}
			}
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].pos != findings[j].pos {
			return findings[i].pos < findings[j].pos
		}
		return findings[i].msg < findings[j].msg
	})
	for _, f := range findings {
		mp.Report(f.pos, "%s", f.msg)
	}
	return nil
}

// update recomputes n's summary against the current module summaries and
// reports whether it grew (summaries only ever grow, so the fixpoint
// terminates).
func update(n *analysis.CGNode, sums map[*analysis.CGNode]*summary, nodeOf map[*types.Func]*analysis.CGNode) bool {
	old := sums[n]
	a := &analyzer{
		node:   n,
		info:   n.Pkg.TypesInfo,
		sums:   sums,
		nodeOf: nodeOf,
		tags:   map[types.Object]tagset{},
	}
	s := a.analyze()

	// Transitive allocation escape through plain calls: calling n runs
	// its callees, so their escaping allocations are n's too.
	if !s.allocEscapes {
		for _, e := range n.Out {
			if e.Kind == "ref" {
				continue
			}
			cs := sums[e.Callee]
			if cs != nil && cs.allocEscapes {
				s.allocEscapes = true
				s.how = cs.how
				s.chain = append([]string{name(n)}, cs.chain...)
				break
			}
		}
	} else {
		s.chain = []string{name(n)}
	}

	grew := false
	if s.allocEscapes && !old.allocEscapes {
		grew = true
	} else if old.allocEscapes {
		// Keep the first witness; summaries never shrink.
		s.allocEscapes, s.how, s.chain = old.allocEscapes, old.how, old.chain
	}
	for i := range s.paramEscapes {
		if old.paramEscapes[i] {
			s.paramEscapes[i] = true
		} else if s.paramEscapes[i] {
			grew = true
		}
	}
	sums[n] = s
	return grew
}

// tagset tracks which roots an expression may hold: bit 0 is "a fresh
// allocation made in this function", bit i+1 is "parameter i".
type tagset uint64

const allocTag tagset = 1

func paramTag(i int) tagset {
	if i >= 62 {
		return 0
	}
	return 1 << (uint(i) + 1)
}

type analyzer struct {
	node   *analysis.CGNode
	info   *types.Info
	sums   map[*analysis.CGNode]*summary
	nodeOf map[*types.Func]*analysis.CGNode
	tags   map[types.Object]tagset

	escaped tagset // roots that reached a sink
	how     string // first sink kind that consumed an allocation
}

func (a *analyzer) analyze() *summary {
	decl := a.node.Decl
	sig := a.node.Fn.Signature()
	for i := 0; i < sig.Params().Len(); i++ {
		a.tags[sig.Params().At(i)] = paramTag(i)
	}
	if decl.Body == nil {
		return &summary{paramEscapes: make([]bool, sig.Params().Len())}
	}
	// Flow-insensitive taint propagation through local assignments, to a
	// fixpoint (handles use-before-def textual order like p := q; q := new).
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := a.info.Defs[id]
				if obj == nil {
					obj = a.info.Uses[id]
				}
				if obj == nil || !isLocalVar(obj) {
					continue
				}
				t := a.exprTags(asg.Rhs[i])
				if t&^a.tags[obj] != 0 {
					a.tags[obj] |= t
					changed = true
				}
			}
			return true
		})
	}
	a.sinks(decl.Body)

	s := &summary{paramEscapes: make([]bool, sig.Params().Len())}
	if a.escaped&allocTag != 0 {
		s.allocEscapes = true
		s.how = a.how
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if a.escaped&paramTag(i) != 0 {
			s.paramEscapes[i] = true
		}
	}
	return s
}

// sinks walks the body recording every context that lets a tagged value
// outlive the frame.
func (a *analyzer) sinks(body ast.Node) {
	ast.Inspect(body, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				a.sink(r, "the allocation is returned")
			}
		case *ast.SendStmt:
			a.sink(m.Value, "the allocation is sent on a channel")
		case *ast.AssignStmt:
			for i, lhs := range m.Lhs {
				if i >= len(m.Rhs) {
					break
				}
				if a.isHeapLValue(lhs) {
					a.sink(m.Rhs[i], "the allocation is stored beyond the frame")
				}
			}
		case *ast.FuncLit:
			// A closure may outlive the frame; anything it captures does
			// too. (Conservative: the closure itself may not escape.)
			ast.Inspect(m.Body, func(inner ast.Node) bool {
				id, ok := inner.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := a.info.Uses[id]; obj != nil {
					if t := a.tags[obj]; t != 0 {
						a.record(t, "the allocation is captured by a closure")
					}
				}
				return true
			})
		case *ast.CallExpr:
			a.callSink(m)
		}
		return true
	})
}

// callSink applies the argument-position escape rules for one call.
func (a *analyzer) callSink(call *ast.CallExpr) {
	if tv, ok := a.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, handled by exprTags
	}
	if id := idOf(call.Fun); id != nil {
		if _, isBuiltin := a.info.Uses[id].(*types.Builtin); isBuiltin {
			return // append/copy/delete propagate via exprTags, never sink
		}
	}
	fn := analysis.Callee(a.info, call)

	var callee *analysis.CGNode
	if fn != nil {
		if orig := origin(fn); orig != nil {
			callee = a.nodeOf[orig]
		}
	}
	var sig *types.Signature
	if fn != nil {
		sig = fn.Signature()
	} else if tv, ok := a.info.Types[call.Fun]; ok && tv.Type != nil {
		sig, _ = tv.Type.Underlying().(*types.Signature)
	}

	for i, arg := range call.Args {
		// Boxing into an interface parameter pins the value to the heap
		// regardless of the callee.
		if sig != nil {
			if pt := paramTypeAt(sig, i); pt != nil && types.IsInterface(pt) && !isInterfaceValue(a.info, arg) {
				a.sink(arg, "the allocation is boxed into an interface argument")
				continue
			}
		}
		switch {
		case callee != nil && callee.Decl != nil:
			s := a.sums[callee]
			if pe := paramEscapeAt(s, sig, i); pe {
				a.sink(arg, "the allocation is passed to a parameter the callee escapes")
			}
		case fn != nil && fn.Pkg() != nil && a.nodeOf[origin(fn)] == nil:
			// Known function outside the module (stdlib): assumed
			// non-escaping apart from the boxing rule above.
		default:
			// Func value or unresolvable callee: conservative.
			a.sink(arg, "the allocation is passed through an untracked function value")
		}
	}
}

// sink marks every root reachable from e as escaped, unless e's type
// cannot carry a reference.
func (a *analyzer) sink(e ast.Expr, how string) {
	if e == nil || a.basicTyped(e) {
		return
	}
	a.record(a.exprTags(e), how)
}

func (a *analyzer) record(t tagset, how string) {
	if t == 0 {
		return
	}
	if t&allocTag != 0 && a.escaped&allocTag == 0 && a.how == "" {
		a.how = how
	}
	a.escaped |= t
}

// exprTags computes which roots e may hold.
func (a *analyzer) exprTags(e ast.Expr) tagset {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := a.info.Uses[e]; obj != nil {
			return a.tags[obj]
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, lit := e.X.(*ast.CompositeLit); lit {
				return allocTag
			}
		}
		return a.exprTags(e.X)
	case *ast.StarExpr:
		return a.exprTags(e.X)
	case *ast.IndexExpr:
		return a.exprTags(e.X)
	case *ast.SelectorExpr:
		return a.exprTags(e.X)
	case *ast.SliceExpr:
		return a.exprTags(e.X)
	case *ast.CompositeLit:
		// A composite literal holding tagged values re-packages them.
		var t tagset
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t |= a.exprTags(el)
		}
		return t
	case *ast.CallExpr:
		if tv, ok := a.info.Types[e.Fun]; ok && tv.IsType() {
			return a.exprTags(e.Args[0]) // conversion
		}
		if id := idOf(e.Fun); id != nil {
			if b, ok := a.info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make", "new":
					return allocTag
				case "append":
					var t tagset
					for _, arg := range e.Args {
						t |= a.exprTags(arg)
					}
					return t
				}
				return 0
			}
		}
	}
	return 0
}

// isHeapLValue reports whether assigning through lhs stores outside the
// current frame's plain locals: a field, an element, a dereference, or a
// package-level variable.
func (a *analyzer) isHeapLValue(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := a.info.Uses[lhs]
		if obj == nil {
			obj = a.info.Defs[lhs]
		}
		return obj != nil && !isLocalVar(obj)
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func (a *analyzer) basicTyped(e ast.Expr) bool {
	tv, ok := a.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, basic := tv.Type.Underlying().(*types.Basic)
	return basic
}

func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	// Package-level variables have the package scope as parent.
	return v.Parent() != v.Pkg().Scope()
}

func idOf(fun ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(fun).(*ast.Ident)
	return id
}

func origin(fn *types.Func) *types.Func {
	if fn == nil {
		return nil
	}
	return fn.Origin()
}

// paramTypeAt resolves the static type of argument position i, treating
// the variadic tail as the variadic parameter's element type.
func paramTypeAt(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if i < params.Len()-1 || !sig.Variadic() {
		if i >= params.Len() {
			return nil
		}
		return params.At(i).Type()
	}
	last := params.At(params.Len() - 1).Type()
	if sl, ok := last.(*types.Slice); ok {
		return sl.Elem()
	}
	return last
}

// paramEscapeAt maps argument position i to the callee's paramEscapes,
// collapsing the variadic tail onto the final parameter.
func paramEscapeAt(s *summary, sig *types.Signature, i int) bool {
	if s == nil || len(s.paramEscapes) == 0 {
		return false
	}
	if sig != nil && sig.Variadic() && i >= len(s.paramEscapes) {
		i = len(s.paramEscapes) - 1
	}
	if i >= len(s.paramEscapes) {
		return false
	}
	return s.paramEscapes[i]
}

// isInterfaceValue reports whether arg is already an interface value
// (no boxing happens at the call).
func isInterfaceValue(info *types.Info, arg ast.Expr) bool {
	tv, ok := info.Types[arg]
	return ok && tv.Type != nil && types.IsInterface(tv.Type)
}
