// Package alloc is an escape fixture: helpers whose allocations are
// invisible to hotloop's syntactic check because they happen one or more
// calls away from the hot loop.
package alloc

type Node struct{ V int }

var sink *Node
var box interface{}

// NewBuf returns a fresh allocation — the canonical escaping helper.
func NewBuf() []int { return make([]int, 8) }

// Wrap is escaping only transitively: Wrap -> NewBuf.
func Wrap() []int { return NewBuf() }

// StoreGlobal allocates and parks the value in a package variable.
func StoreGlobal() {
	p := new(Node)
	sink = p
}

// CaptureClosure allocates and hands the buffer to a returned closure.
func CaptureClosure() func() int {
	buf := make([]int, 4)
	return func() int { return buf[0] }
}

// Boxer allocates and boxes the pointer into an interface argument.
func Boxer() {
	p := &Node{V: 1}
	consume(p)
}

func consume(v interface{}) { box = v }

// Keep escapes its parameter; ViaParam is escaping because it allocates
// and passes the allocation to Keep.
func Keep(p *Node) { sink = p }

func ViaParam() {
	p := new(Node)
	Keep(p)
}

// LocalOnly allocates but only a basic value leaves the frame — not an
// escape.
func LocalOnly() int {
	s := make([]int, 8)
	s[0] = 1
	return s[0]
}

// PureCompute never allocates.
func PureCompute(x int) int { return x*x + 1 }

// BorrowSum reads its argument without escaping it.
func BorrowSum(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
