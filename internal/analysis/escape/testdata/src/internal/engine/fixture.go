// Package engine (fixture): every want below is a call whose allocation
// lives only in example.com/alloc — hotloop's syntactic check cannot see
// any of them.
package engine

import "example.com/alloc"

type builder interface{ Build() []int }

type heapBuilder struct{}

func (heapBuilder) Build() []int { return make([]int, 16) }

func Traverse(adj [][]int32, b builder) int {
	total := 0
	for _, row := range adj {
		for range row {
			buf := alloc.NewBuf() // want "call to alloc.NewBuf in a nested hot loop allocates per edge: the allocation is returned"
			total += len(buf)
			w := alloc.Wrap() // want `call to alloc.Wrap in a nested hot loop allocates per edge: the allocation is returned \(path: alloc.Wrap -> alloc.NewBuf\)`
			total += len(w)
			alloc.StoreGlobal()         // want "the allocation is stored beyond the frame"
			c := alloc.CaptureClosure() // want "the allocation is captured by a closure"
			total += c()
			alloc.Boxer()                 // want "the allocation is boxed"
			alloc.ViaParam()              // want "the allocation is passed to a parameter the callee escapes"
			total += b.Build()[0]         // want "call to engine.Build in a nested hot loop allocates per edge"
			total += alloc.LocalOnly()    // no finding: allocation never escapes
			total += alloc.PureCompute(3) // no finding: no allocation
			total += alloc.BorrowSum(nil) // no finding: argument is borrowed, not kept
		}
	}
	buf := alloc.NewBuf() // depth 1: amortized per-vertex work, no finding
	return total + len(buf)
}

// ForItems mimics the engine's closure-based iteration: the closure body
// inherits the loop depth, so the call inside it is hot.
func ForItems(items []int, fn func(int)) {
	for _, it := range items {
		fn(it)
	}
}

func Drive(adj [][]int32) {
	for range adj {
		ForItems(nil, func(n int) {
			for i := 0; i < n; i++ {
				_ = alloc.NewBuf() // want "call to alloc.NewBuf in a nested hot loop allocates per edge"
			}
		})
	}
}
