package escape_test

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/escape"
)

// TestEscape exercises the interprocedural contract: every want in the
// fixture sits on a hot-loop call site, and every allocation lives in the
// imported example.com/alloc helper (or behind an interface dispatch) —
// none is syntactically visible to hotloop at the call site.
func TestEscape(t *testing.T) {
	analysis.RunTest(t, escape.Analyzer, "internal/engine")
}
