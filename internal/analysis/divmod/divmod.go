// Package divmod reports integer division and modulo whose divisor the
// value-range analysis knows something about — and that something
// includes zero — plus signed shift counts that may be negative. Both
// are runtime panics in Go, and in graph code they surface on degenerate
// inputs (empty partitions, zero-degree vertices) that unit tests
// rarely cover.
//
// Noise control: a divisor the analysis knows nothing about (its
// interval is just its type's range) is NOT reported — flagging every
// `x / n` would bury the real findings. A report therefore always comes
// with evidence: the analysis derived a non-trivial range for the
// divisor (a length, a loop bound, a guard) and zero is inside it. The
// fix is the guard the code is missing: `if n == 0` before the divide,
// or a `%` against a length proven positive.
package divmod

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name:      "divmod",
	Doc:       "report divisions/mods whose inferred divisor range includes zero and possibly-negative shift counts",
	RunModule: run,
}

func run(mp *analysis.ModulePass) error {
	cg := mp.Module.CallGraph()
	ri := mp.Module.Ranges()
	for _, n := range cg.Declared() {
		if n.Decl.Body == nil {
			continue
		}
		analysis.WalkUnits(n.Decl, func(m ast.Node, depth int, unit ast.Node) {
			var op token.Token
			var y ast.Expr
			switch x := m.(type) {
			case *ast.BinaryExpr:
				op, y = x.Op, x.Y
			case *ast.AssignStmt:
				if len(x.Rhs) != 1 {
					return
				}
				switch x.Tok {
				case token.QUO_ASSIGN:
					op, y = token.QUO, x.Rhs[0]
				case token.REM_ASSIGN:
					op, y = token.REM, x.Rhs[0]
				case token.SHL_ASSIGN:
					op, y = token.SHL, x.Rhs[0]
				case token.SHR_ASSIGN:
					op, y = token.SHR, x.Rhs[0]
				default:
					return
				}
			default:
				return
			}
			switch op {
			case token.QUO, token.REM:
				checkDivisor(mp, ri, n, unit, op, y)
			case token.SHL, token.SHR:
				checkShift(mp, ri, n, unit, y)
			}
		})
	}
	return nil
}

func checkDivisor(mp *analysis.ModulePass, ri *analysis.RangeInfo, n *analysis.CGNode, unit ast.Node, op token.Token, y ast.Expr) {
	info := n.Pkg.TypesInfo
	tv, ok := info.Types[y]
	if !ok || tv.Type == nil || !isInt(tv.Type) {
		return // float division never panics; constants divide at compile time
	}
	if tv.Value != nil {
		return // nonzero constant divisor (zero is a compile error)
	}
	fr := ri.ForFunc(n.Pkg, unit)
	env := fr.EnvAt(y.Pos())
	if env == nil {
		return
	}
	ok, iv := fr.ProveNonZero(env, y)
	if ok || !evidence(iv, tv.Type) {
		return
	}
	word := "division"
	if op == token.REM {
		word = "modulo"
	}
	msg := word + " by " + analysis.ExprString(mp.Module.Fset, y) +
		" whose inferred range " + iv.String() + " includes zero; guard with a zero check first"
	mp.Report(y.Pos(), "%s", msg)
}

func checkShift(mp *analysis.ModulePass, ri *analysis.RangeInfo, n *analysis.CGNode, unit ast.Node, y ast.Expr) {
	info := n.Pkg.TypesInfo
	tv, ok := info.Types[y]
	if !ok || tv.Type == nil || tv.Value != nil {
		return // constant shift counts are compiler-checked
	}
	b, bok := tv.Type.Underlying().(*types.Basic)
	if !bok || b.Info()&types.IsInteger == 0 || b.Info()&types.IsUnsigned != 0 {
		return // unsigned counts cannot be negative
	}
	fr := ri.ForFunc(n.Pkg, unit)
	env := fr.EnvAt(y.Pos())
	if env == nil {
		return
	}
	ok, iv := fr.ProveNonNeg(env, y)
	if ok || !evidence(iv, tv.Type) {
		return
	}
	msg := "shift count " + analysis.ExprString(mp.Module.Fset, y) +
		" whose inferred range " + iv.String() + " includes negative values (a run-time panic); guard or use an unsigned count"
	mp.Report(y.Pos(), "%s", msg)
}

// evidence reports whether the analysis learned something about the
// LOW end of iv beyond what t's own range implies. Zero-divisor and
// negative-shift hazards live at the low end, and requiring knowledge
// there filters the pseudo-evidence arithmetic creates: `x - 1` on an
// unknown x dents only the high endpoint of the type range, which says
// nothing about zero.
func evidence(iv analysis.Interval, t types.Type) bool {
	if iv.IsFull() {
		return false
	}
	tr, ok := analysis.TypeRange(t)
	if !ok {
		return false
	}
	return iv.Lo != tr.Lo
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
