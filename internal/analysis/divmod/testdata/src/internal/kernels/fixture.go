// Fixture for the divmod analyzer: divisions and mods whose inferred
// divisor range includes zero, and shifts whose count may be negative.
package kernels

// Positive: a slice length divides — empty input panics.
func meanDegree(deg []int64) int64 {
	var s int64
	for _, d := range deg {
		s += d
	}
	return s / int64(len(deg)) // want "division by int64\\(len\\(deg\\)\\) .* includes zero"
}

// Positive: modulo by a counter that starts at zero.
func wrap(x int) int {
	k := 0
	for i := 0; i < x; i++ {
		k++
	}
	return x % k // want "modulo by k .* includes zero"
}

// Positive: the len-1 shift count underflows on empty input.
func shiftByDegree(x int64, deg []int64) int64 {
	b := len(deg) - 1
	return x >> b // want "shift count b .* includes negative values"
}

// Negative: the zero guard the analyzer asks for.
func meanGuarded(deg []int64) int64 {
	if len(deg) == 0 {
		return 0
	}
	var s int64
	for _, d := range deg {
		s += d
	}
	return s / int64(len(deg))
}

// Negative: defaulting establishes a positive divisor.
func shards(n, hint int) int {
	if hint <= 0 {
		hint = 256
	}
	return n / hint
}

// Negative (noise control): a divisor the analysis knows nothing
// about is not reported.
func unknown(a, b int) int {
	return a / b
}

// Negative: unsigned shift counts cannot be negative.
func shiftUnsigned(x int64, b uint) int64 {
	return x >> b
}
