package divmod_test

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/divmod"
)

func TestDivMod(t *testing.T) {
	analysis.RunTest(t, divmod.Analyzer, "internal/kernels")
}
