package pointsto

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// loadSrc type-checks src as fixture package example.com/pt and returns
// the solved points-to result.
func loadSrc(t *testing.T, src string) (*Result, *analysis.Package) {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "example.com", "pt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "pt.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.TestdataRoot = root
	pkg, err := l.LoadFixture("example.com/pt")
	if err != nil {
		t.Fatalf("LoadFixture: %v", err)
	}
	m := analysis.NewModule([]*analysis.Package{pkg})
	return Of(m), pkg
}

// varByName finds the unique variable named name in pkg.
func varByName(t *testing.T, pkg *analysis.Package, name string) *types.Var {
	t.Helper()
	var found *types.Var
	for id, obj := range pkg.TypesInfo.Defs {
		if v, ok := obj.(*types.Var); ok && id.Name == name {
			if found != nil && found != v {
				t.Fatalf("variable %q is not unique in fixture", name)
			}
			found = v
		}
	}
	if found == nil {
		t.Fatalf("variable %q not found in fixture", name)
	}
	return found
}

// funcByName finds the declared function named name.
func funcByName(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	for id, obj := range pkg.TypesInfo.Defs {
		if fn, ok := obj.(*types.Func); ok && id.Name == name {
			return fn
		}
	}
	t.Fatalf("function %q not found in fixture", name)
	return nil
}

func ids(objs []*Object) map[ObjID]bool {
	out := map[ObjID]bool{}
	for _, o := range objs {
		out[o.ID] = true
	}
	return out
}

func intersects(a, b []*Object) bool {
	bi := ids(b)
	for _, o := range a {
		if bi[o.ID] {
			return true
		}
	}
	return false
}

// allocsOf filters to real allocation sites (no extern/blur noise).
func allocsOf(objs []*Object) []*Object {
	var out []*Object
	for _, o := range objs {
		if o.Kind == KAlloc {
			out = append(out, o)
		}
	}
	return out
}

func TestBasicAliasing(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

func F() {
	a := make([]int32, 4)
	b := a
	c := make([]int32, 4)
	_, _, _ = a, b, c
}
`)
	a := r.VarObjects(varByName(t, pkg, "a"))
	b := r.VarObjects(varByName(t, pkg, "b"))
	c := r.VarObjects(varByName(t, pkg, "c"))
	if !intersects(a, b) {
		t.Error("a and b share a make site but do not alias")
	}
	if intersects(a, c) {
		t.Error("a and c have distinct make sites but alias")
	}
	if len(a) != 1 || a[0].Kind != KAlloc {
		t.Errorf("pts(a) = %v, want exactly its make site", a)
	}
}

func TestFieldSensitivity(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

type P struct{ a, b []int32 }

var ga, gb []int32

func F() {
	p := P{a: make([]int32, 1), b: make([]int32, 1)}
	ga = p.a
	gb = p.b
}
`)
	ga := allocsOf(r.VarObjects(varByName(t, pkg, "ga")))
	gb := allocsOf(r.VarObjects(varByName(t, pkg, "gb")))
	if len(ga) == 0 || len(gb) == 0 {
		t.Fatalf("globals lost their field contents: ga=%v gb=%v", ga, gb)
	}
	if intersects(ga, gb) {
		t.Error("distinct struct fields alias: analysis is not field-sensitive")
	}
}

// TestClosureCapture covers constraint generation on closures: a
// captured slice must flow through the literal's return and the
// indirect call that invokes it.
func TestClosureCapture(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

func F() []int32 {
	s := make([]int32, 4)
	f := func() []int32 { return s }
	return f()
}
`)
	rets := allocsOf(r.ReturnObjects(funcByName(t, pkg, "F"), 0))
	if len(rets) != 1 {
		t.Fatalf("F's return pts = %v, want the captured make site", rets)
	}
	s := r.VarObjects(varByName(t, pkg, "s"))
	if !intersects(rets, s) {
		t.Error("closure-returned slice does not alias the captured variable")
	}
}

// TestMethodValue covers bound-method values: the receiver recorded at
// the `b.Get` evaluation must bind when the value is invoked.
func TestMethodValue(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

type Box struct{ v []int32 }

func (b *Box) Get() []int32 { return b.v }

func G() []int32 {
	b := &Box{v: make([]int32, 1)}
	f := b.Get
	return f()
}
`)
	rets := allocsOf(r.ReturnObjects(funcByName(t, pkg, "G"), 0))
	if len(rets) == 0 {
		t.Fatal("method-value call lost the receiver's field contents")
	}
	for _, o := range rets {
		if _, ok := o.Type.Underlying().(*types.Slice); !ok {
			t.Errorf("G returns non-slice object %v (kind %v)", o.Type, o.Kind)
		}
	}
}

// TestSliceOfSliceStore covers stores through nested element cells:
// rows[0] = r must make loads of rows[i] see r's allocation.
func TestSliceOfSliceStore(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

var leak []int32

func H() {
	rows := make([][]int32, 2)
	inner := make([]int32, 3)
	rows[0] = inner
	leak = rows[1]

	private := make([]int32, 3)
	_ = private
}
`)
	leak := r.VarObjects(varByName(t, pkg, "leak"))
	inner := r.VarObjects(varByName(t, pkg, "inner"))
	if !intersects(leak, inner) {
		t.Error("slice-of-slice store lost: leak should alias inner")
	}
	for _, o := range allocsOf(inner) {
		if !r.Escapes(o) {
			t.Error("inner reaches a package-level var but does not Escape")
		}
	}
	for _, o := range allocsOf(r.VarObjects(varByName(t, pkg, "private"))) {
		if r.Escapes(o) {
			t.Error("private allocation escapes but is never shared")
		}
	}
}

// TestInterfaceBoxing covers boxing a concrete value into an interface
// and resolving the interface call from the receiver's points-to set.
func TestInterfaceBoxing(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

type I interface{ M() []int32 }

type T struct{ s []int32 }

func (t T) M() []int32 { return t.s }

func K() []int32 {
	v := T{s: make([]int32, 1)}
	var i I = v
	return i.M()
}
`)
	rets := allocsOf(r.ReturnObjects(funcByName(t, pkg, "K"), 0))
	if len(rets) == 0 {
		t.Fatal("interface call lost the boxed value's field contents")
	}
}

func TestAliasesQuery(t *testing.T) {
	r, pkg := loadSrc(t, `package pt

func F(a []int32) ([]int32, []int32) {
	b := a[1:3]
	c := make([]int32, 2)
	return b, c
}
`)
	fn := funcByName(t, pkg, "F")
	r0 := r.ReturnObjects(fn, 0)
	r1 := r.ReturnObjects(fn, 1)
	a := r.VarObjects(varByName(t, pkg, "a"))
	if !r.MayAlias(r0, a) {
		t.Error("reslice does not alias its base parameter")
	}
	if r.MayAlias(r1, a) {
		t.Error("fresh make aliases an unrelated parameter")
	}
}

// TestCycleTermination drives the raw solver with a pathological
// constraint graph — many interlocked copy rings with loads and stores
// across them — and asserts the SCC collapsing keeps the worklist
// effort bounded.
func TestCycleTermination(t *testing.T) {
	s := NewSolver()
	const rings = 20
	const ringLen = 50
	nodes := make([][]NodeID, rings)
	for i := range nodes {
		nodes[i] = make([]NodeID, ringLen)
		for j := range nodes[i] {
			nodes[i][j] = s.NewNode()
		}
		// Close the ring: n0 <- n1 <- ... <- nk <- n0.
		for j := range nodes[i] {
			s.AddCopy(nodes[i][j], nodes[i][(j+1)%ringLen])
		}
	}
	// Interlock the rings with cross edges both ways (one giant SCC).
	for i := 0; i < rings; i++ {
		s.AddCopy(nodes[i][0], nodes[(i+1)%rings][ringLen/2])
		s.AddCopy(nodes[(i+1)%rings][ringLen/2], nodes[i][0])
	}
	// Objects enter at one point per ring; loads/stores chain the rings
	// through a shared field graph.
	base := s.NewNode()
	for i := 0; i < rings; i++ {
		o := s.NewObject()
		s.AddAddr(nodes[i][i%ringLen], o)
		s.AddStore(base, ElemField, nodes[i][0])
	}
	root := s.NewObject()
	s.AddAddr(base, root)
	sink := s.NewNode()
	s.AddLoad(sink, base, ElemField)

	s.Solve()

	// Every ring node sees every object (one SCC + full interlock).
	want := rings
	for i := range nodes {
		for _, n := range nodes[i] {
			if got := len(s.PointsTo(n)); got != want {
				t.Fatalf("ring node has %d objects, want %d", got, want)
			}
		}
	}
	if got := len(s.PointsTo(sink)); got != want {
		t.Fatalf("sink sees %d objects through load, want %d", got, want)
	}
	st := s.Stats()
	if st.Collapsed == 0 {
		t.Error("pathological cycle graph triggered no SCC collapsing")
	}
	// The bound that matters: effort must stay near-linear in nodes, not
	// quadratic (rings*ringLen*objects ≈ 20k would indicate re-propagation
	// around uncollapsed cycles).
	if limit := 4 * rings * ringLen; st.Iterations > limit {
		t.Errorf("solver took %d iterations on %d nodes (limit %d): cycle collapsing ineffective",
			st.Iterations, st.Nodes, limit)
	}
}

// TestSolverIncremental checks constraints added after a Solve are
// honored by the next Solve — the indirect-call fixpoint depends on it.
func TestSolverIncremental(t *testing.T) {
	s := NewSolver()
	a, b := s.NewNode(), s.NewNode()
	o := s.NewObject()
	s.AddAddr(a, o)
	s.Solve()
	s.AddCopy(b, a)
	s.Solve()
	if !s.Contains(b, o) {
		t.Error("copy edge added after Solve did not propagate")
	}
}
