package pointsto

// The constraint solver: a standard inclusion-based (Andersen) worklist
// fixpoint over set-inclusion constraints, with union-find node merging
// and periodic SCC collapsing of the copy-edge graph so that cyclic
// constraint systems (mutually recursive assignments, closure loops)
// converge in near-linear time instead of quadratically re-propagating
// around the cycle. The solver itself is untyped — nodes and objects are
// opaque IDs — so the generator (gen.go) and the unit tests can both
// drive it directly.
//
// Constraint forms (dst, src, base are nodes; o is an object; f a field):
//
//	addr:  pts(dst) ⊇ {o}                  AddAddr
//	copy:  pts(dst) ⊇ pts(src)             AddCopy
//	load:  ∀o ∈ pts(base): pts(dst) ⊇ pts(fld(o,f))   AddLoad
//	store: ∀o ∈ pts(base): pts(fld(o,f)) ⊇ pts(src)   AddStore
//
// Field nodes fld(o,f) are materialized lazily. Propagation is
// difference-based: each node keeps a flushed set (pts) and a pending
// delta; popping a node processes only the delta against its complex
// constraints and successors, so each (object, edge) pair is handled a
// bounded number of times between collapses.

import "math/bits"

// NodeID names one points-to set (a variable, field cell, or temporary).
type NodeID = int32

// ObjID names one abstract object (allocation site).
type ObjID = int32

// ElemField is the pseudo-field holding the element cells of a slice,
// array, map, channel, or pointer object. MapKeyField holds map keys.
// Named struct fields are assigned IDs from NamedFieldBase up.
const (
	ElemField      = int32(0)
	MapKeyField    = int32(1)
	NamedFieldBase = int32(2)
)

type bitset []uint64

func (b bitset) has(i int32) bool {
	w := int(i) >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

func (b *bitset) set(i int32) bool {
	w := int(i) >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	m := uint64(1) << uint(i&63)
	if (*b)[w]&m != 0 {
		return false
	}
	(*b)[w] |= m
	return true
}

// orDiff ORs src into b and returns the newly set bits, or nil if none.
func (b *bitset) orDiff(src bitset) bitset {
	var diff bitset
	for w, s := range src {
		for w >= len(*b) {
			*b = append(*b, 0)
		}
		if d := s &^ (*b)[w]; d != 0 {
			for len(diff) <= w {
				diff = append(diff, 0)
			}
			diff[w] = d
			(*b)[w] |= d
		}
	}
	return diff
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func (b bitset) forEach(fn func(int32)) {
	for w, word := range b {
		for word != 0 {
			i := int32(w<<6) + int32(bits.TrailingZeros64(word))
			fn(i)
			word &= word - 1
		}
	}
}

type fieldKey struct {
	obj   ObjID
	field int32
}

// complexC is one load or store constraint hanging off its base node.
type complexC struct {
	other NodeID // load: the destination; store: the source
	field int32
}

// filteredC is a type-filtered copy edge: only objects keep approves
// propagate from the source to dst. Used for extern blur-out, where the
// unfiltered contents of the blur would make every unanalyzed call
// result alias everything ever passed to unanalyzed code.
type filteredC struct {
	dst  NodeID
	keep func(o ObjID) bool
}

// Stats reports solver effort, for regression tests on pathological
// constraint graphs.
type Stats struct {
	Nodes      int // nodes created
	Objects    int // objects created
	CopyEdges  int // copy edges added (post-dedup)
	Iterations int // worklist pops that carried a non-empty delta
	Collapsed  int // nodes merged away by SCC collapsing
}

// Solver is the reusable constraint engine. Zero value is not ready;
// use NewSolver.
type Solver struct {
	// TypeFilter, when set, vetoes field cells an object's type cannot
	// have: FieldNode returns -1 for vetoed (object, field) pairs and the
	// load/store firing skips them. Without it, one object flowing
	// through an over-merged node (the extern blur, an any-typed value)
	// accretes the field cells of every other object it met there, and
	// stores through the merged node contaminate real objects' cells.
	TypeFilter func(o ObjID, field int32) bool

	parent   []NodeID // union-find; parent[n] == n for representatives
	pts      []bitset // flushed points-to sets
	delta    []bitset // pending (unpropagated) additions
	succ     [][]NodeID
	loads    [][]complexC
	stores   [][]complexC
	filtered [][]filteredC

	edgeSeen map[uint64]struct{}
	field    map[fieldKey]NodeID

	work   []NodeID
	inWork bitset

	numObj       int
	copyEdges    int
	iterations   int
	collapsed    int
	sinceSCC     int
	sccThreshold int
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{
		edgeSeen:     map[uint64]struct{}{},
		field:        map[fieldKey]NodeID{},
		sccThreshold: 256,
	}
}

// NewNode allocates a fresh, empty points-to set.
func (s *Solver) NewNode() NodeID {
	n := NodeID(len(s.parent))
	s.parent = append(s.parent, n)
	s.pts = append(s.pts, nil)
	s.delta = append(s.delta, nil)
	s.succ = append(s.succ, nil)
	s.loads = append(s.loads, nil)
	s.stores = append(s.stores, nil)
	s.filtered = append(s.filtered, nil)
	return n
}

// NewObject allocates a fresh abstract object.
func (s *Solver) NewObject() ObjID {
	o := ObjID(s.numObj)
	s.numObj++
	return o
}

// FieldNode returns the node holding pts(fld(o, field)), creating it on
// first use — or -1 when TypeFilter vetoes the pair (o's type cannot
// have that field). The veto is memoized.
func (s *Solver) FieldNode(o ObjID, field int32) NodeID {
	k := fieldKey{o, field}
	n, ok := s.field[k]
	if !ok {
		if s.TypeFilter != nil && !s.TypeFilter(o, field) {
			s.field[k] = -1
			return -1
		}
		n = s.NewNode()
		s.field[k] = n
	}
	if n < 0 {
		return -1
	}
	return s.find(n)
}

func (s *Solver) find(n NodeID) NodeID {
	for s.parent[n] != n {
		s.parent[n] = s.parent[s.parent[n]] // path halving
		n = s.parent[n]
	}
	return n
}

func (s *Solver) push(n NodeID) {
	if !s.inWork.has(n) {
		s.inWork.set(n)
		s.work = append(s.work, n)
	}
}

// AddAddr adds o to pts(dst).
func (s *Solver) AddAddr(dst NodeID, o ObjID) {
	dst = s.find(dst)
	if !s.pts[dst].has(int32(o)) && s.delta[dst].set(int32(o)) {
		s.push(dst)
	}
}

// AddCopy adds the inclusion pts(dst) ⊇ pts(src).
func (s *Solver) AddCopy(dst, src NodeID) {
	dst, src = s.find(dst), s.find(src)
	if dst == src {
		return
	}
	key := uint64(src)<<32 | uint64(uint32(dst))
	if _, ok := s.edgeSeen[key]; ok {
		return
	}
	s.edgeSeen[key] = struct{}{}
	s.succ[src] = append(s.succ[src], dst)
	s.copyEdges++
	// Propagate what src already holds.
	s.addBits(dst, s.pts[src])
	s.addBits(dst, s.delta[src])
}

// AddLoad adds ∀o ∈ pts(base): pts(dst) ⊇ pts(fld(o, field)).
func (s *Solver) AddLoad(dst, base NodeID, field int32) {
	base, dst = s.find(base), s.find(dst)
	s.loads[base] = append(s.loads[base], complexC{other: dst, field: field})
	// Apply to objects already present.
	s.pts[base].forEach(func(o int32) {
		if fn := s.FieldNode(o, field); fn >= 0 {
			s.AddCopy(dst, fn)
		}
	})
}

// AddStore adds ∀o ∈ pts(base): pts(fld(o, field)) ⊇ pts(src).
func (s *Solver) AddStore(base NodeID, field int32, src NodeID) {
	base, src = s.find(base), s.find(src)
	s.stores[base] = append(s.stores[base], complexC{other: src, field: field})
	s.pts[base].forEach(func(o int32) {
		if fn := s.FieldNode(o, field); fn >= 0 {
			s.AddCopy(fn, src)
		}
	})
}

// AddFilteredCopy adds pts(dst) ⊇ {o ∈ pts(src) | keep(o)}. A nil keep
// admits everything (plain copy without edge dedup).
func (s *Solver) AddFilteredCopy(dst, src NodeID, keep func(o ObjID) bool) {
	dst, src = s.find(dst), s.find(src)
	if dst == src {
		return
	}
	s.filtered[src] = append(s.filtered[src], filteredC{dst: dst, keep: keep})
	apply := func(o int32) {
		if keep == nil || keep(ObjID(o)) {
			s.addObj(dst, o)
		}
	}
	s.pts[src].forEach(apply)
	s.delta[src].forEach(apply)
}

// addObj adds a single object to dst's pending delta.
func (s *Solver) addObj(dst NodeID, o int32) {
	dst = s.find(dst)
	if s.pts[dst].has(o) || s.delta[dst].has(o) {
		return
	}
	s.delta[dst].set(o)
	s.push(dst)
}

func (s *Solver) addBits(dst NodeID, b bitset) {
	if len(b) == 0 {
		return
	}
	dst = s.find(dst)
	changed := false
	b.forEach(func(o int32) {
		if !s.pts[dst].has(o) && s.delta[dst].set(o) {
			changed = true
		}
	})
	if changed {
		s.push(dst)
	}
}

// Solve runs the worklist to a fixpoint. Incremental: constraints added
// after a Solve are picked up by the next Solve call.
func (s *Solver) Solve() {
	for len(s.work) > 0 {
		n := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		if int(n) < len(s.inWork)<<6 {
			s.inWork[n>>6] &^= 1 << uint(n&63)
		}
		if s.parent[n] != n {
			// Collapsed away; its delta was merged into the representative.
			continue
		}
		d := s.delta[n]
		if d.empty() {
			continue
		}
		s.delta[n] = nil
		s.pts[n].orDiff(d) // flush
		s.iterations++
		s.sinceSCC++
		// New objects activate this node's complex constraints.
		for _, c := range s.loads[n] {
			d.forEach(func(o int32) {
				if fn := s.FieldNode(o, c.field); fn >= 0 {
					s.AddCopy(c.other, fn)
				}
			})
		}
		for _, c := range s.stores[n] {
			d.forEach(func(o int32) {
				if fn := s.FieldNode(o, c.field); fn >= 0 {
					s.AddCopy(fn, c.other)
				}
			})
		}
		for _, fc := range s.filtered[n] {
			d.forEach(func(o int32) {
				if fc.keep == nil || fc.keep(ObjID(o)) {
					s.addObj(fc.dst, o)
				}
			})
		}
		for _, m := range s.succ[n] {
			s.addBits(m, d)
		}
		if s.sinceSCC >= s.sccThreshold {
			s.collapseSCCs()
			s.sinceSCC = 0
			s.sccThreshold *= 2
		}
	}
}

// PointsTo returns the objects in pts(n), ascending. n == -1 (a vetoed
// field cell) yields nil.
func (s *Solver) PointsTo(n NodeID) []ObjID {
	if n < 0 {
		return nil
	}
	n = s.find(n)
	var out []ObjID
	s.pts[n].forEach(func(o int32) { out = append(out, o) })
	s.delta[n].forEach(func(o int32) {
		if !s.pts[n].has(o) {
			out = append(out, o)
		}
	})
	sortIDs(out)
	return out
}

// Contains reports o ∈ pts(n) without materializing the set.
func (s *Solver) Contains(n NodeID, o ObjID) bool {
	if n < 0 {
		return false
	}
	n = s.find(n)
	return s.pts[n].has(int32(o)) || s.delta[n].has(int32(o))
}

// Stats returns cumulative solver effort counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Nodes:      len(s.parent),
		Objects:    s.numObj,
		CopyEdges:  s.copyEdges,
		Iterations: s.iterations,
		Collapsed:  s.collapsed,
	}
}

func sortIDs(xs []ObjID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// collapseSCCs finds strongly connected components of the copy-edge
// graph (over representatives) and merges each multi-node component into
// one node: every member provably ends with the same points-to set, so
// distinct nodes only waste propagation. Iterative Tarjan.
func (s *Solver) collapseSCCs() {
	n := len(s.parent)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make(bitset, (n+63)/64)
	for i := range index {
		index[i] = -1
	}
	var stack []NodeID
	var next int32 = 0

	type frame struct {
		v  NodeID
		ei int
	}
	var frames []frame

	visit := func(root NodeID) {
		frames = frames[:0]
		frames = append(frames, frame{v: root})
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack.set(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(s.succ[v]) {
				w := s.find(s.succ[v][f.ei])
				f.ei++
				if w == v {
					continue
				}
				if index[w] < 0 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack.set(w)
					frames = append(frames, frame{v: w})
				} else if onStack.has(w) && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			// Pop v; close its SCC if v is a root.
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w>>6] &^= 1 << uint(w&63)
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				if len(comp) > 1 {
					s.mergeComponent(comp)
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}

	for v := NodeID(0); int(v) < n; v++ {
		if s.parent[v] == v && index[v] < 0 {
			visit(v)
		}
	}
}

// mergeComponent unions comp[1:] into comp[0].
func (s *Solver) mergeComponent(comp []NodeID) {
	rep := comp[0]
	for _, v := range comp[1:] {
		s.parent[v] = rep
		s.pts[rep].orDiff(s.pts[v])
		s.addBits(rep, s.delta[v])
		s.succ[rep] = append(s.succ[rep], s.succ[v]...)
		s.loads[rep] = append(s.loads[rep], s.loads[v]...)
		s.stores[rep] = append(s.stores[rep], s.stores[v]...)
		s.filtered[rep] = append(s.filtered[rep], s.filtered[v]...)
		s.pts[v], s.delta[v], s.succ[v] = nil, nil, nil
		s.loads[v], s.stores[v], s.filtered[v] = nil, nil, nil
		s.collapsed++
	}
	// The merged sets must still flow to the (possibly external)
	// successors, so the representative re-enters the worklist with its
	// full set as delta: cheapest correct option after a merge.
	full := append(bitset(nil), s.pts[rep]...)
	s.pts[rep] = nil
	s.delta[rep].orDiff(full)
	s.push(rep)
}
