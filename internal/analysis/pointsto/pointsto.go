// Package pointsto implements a flow-insensitive, field-sensitive,
// context-insensitive Andersen-style (inclusion-based) points-to
// analysis over an analysis.Module. It gives the graphbig-vet analyzers
// aliasing facts the syntactic provers cannot derive: which abstract
// objects an expression may refer to, whether two expressions may
// alias, and whether an object can be reached from outside the module's
// analyzed code (Escapes).
//
// # Abstraction
//
// Objects are allocation sites: every make/new/composite-literal/append
// expression, every address-taken or aggregate-typed variable (its
// storage cell), every function literal and referenced declared
// function (so indirect calls can be resolved from points-to sets), and
// one "extern" object standing for everything allocated by unanalyzed
// code. Field-sensitivity is per named struct field plus two
// pseudo-fields: Elem (slice/array/map/chan/pointer element cells) and
// MapKey. The analysis is flow-insensitive (one points-to set per node,
// no program-point ordering) and context-insensitive (one summary per
// function, all call sites merged) — sound for may-alias queries, which
// is what the analyzers consume.
//
// # Calls
//
// Static calls bind arguments to parameters and returns to call-result
// nodes directly. Indirect calls (func-typed values, interface method
// calls) are resolved from the points-to set of the callee expression —
// function objects and the receivers' concrete types — by an outer
// fixpoint: solve, bind any newly discovered (site, target) pairs, and
// re-solve until no binding is added. Calls into unanalyzed code route
// every pointer-like argument into the extern object and every result
// out of it, the conservative blur.
package pointsto

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// Kind classifies an abstract object.
type Kind int

const (
	// KAlloc is a make/new/composite-literal/append/conversion
	// allocation site.
	KAlloc Kind = iota
	// KVar is the storage cell of a variable that needed an object of
	// its own: address-taken locals and every struct/array-typed
	// variable (its fields/elements are cells inside this object).
	KVar
	// KInner is a struct-typed field cell seeded inside another object
	// so that writes through nested value fields are never lost.
	KInner
	// KFunc is a function value: a func literal, a declared function
	// referenced as a value, or a bound-method value.
	KFunc
	// KExtern is the single object standing for all unanalyzed memory.
	KExtern
	// KParam is a symbolic object seeded into a declared function's
	// parameter: "whatever the caller passed". It keeps intra-function
	// alias queries meaningful for entry points whose callers are not
	// analyzed (exported API, test-only paths).
	KParam
)

func (k Kind) String() string {
	switch k {
	case KAlloc:
		return "alloc"
	case KVar:
		return "var"
	case KInner:
		return "inner"
	case KFunc:
		return "func"
	case KExtern:
		return "extern"
	case KParam:
		return "param"
	}
	return "?"
}

// Object is one abstract object (allocation site).
type Object struct {
	ID   ObjID
	Kind Kind
	// Site is the allocation syntax: the make/new/composite/append call,
	// the func literal, the referencing ident of a declared function, or
	// the declaring ident of a KVar cell. Nil for KExtern and KInner.
	Site ast.Node
	// Type is the cell's type (what the object stores), best effort.
	Type types.Type
	// Var is the variable for KVar cells.
	Var *types.Var
	// Fn is the enclosing declared function for function-local sites
	// (nil for package-level sites and KExtern). For KFunc objects of
	// declared functions or method values it is the function itself.
	Fn *types.Func
	// Lit is the literal for KFunc objects made from func literals.
	Lit *ast.FuncLit
	// Pkg is the analyzed package containing the site, nil for KExtern.
	Pkg *analysis.Package

	// recv, for bound-method KFunc objects, holds the receiver value's
	// node so indirect invocation can bind it.
	recv NodeID
}

// Pos returns the object's source position (NoPos for extern/inner).
func (o *Object) Pos() token.Pos {
	if o.Site != nil {
		return o.Site.Pos()
	}
	return token.NoPos
}

// Result is the solved points-to relation for one module.
type Result struct {
	Module *analysis.Module

	s       *Solver
	objects []*Object

	varN  map[*types.Var]NodeID
	exprN map[ast.Expr]NodeID
	retN  map[*types.Func][]NodeID
	callN map[*ast.CallExpr][]NodeID
	fldID map[*types.Var]int32
	// fldPos canonicalizes generic instantiations: every instance of a
	// struct field shares the declaring position, so a field var from a
	// different instantiation than generation saw still resolves.
	fldPos map[token.Pos]int32

	externObj ObjID

	escOnce sync.Once
	escaped bitset

	holdOnce sync.Once
	// holders[o] lists every node whose points-to set contains o,
	// tagged with the position that makes the holder "live" (the var's
	// declaration, the holding object's site, NoPos for extern/returns).
	holders [][]holderRef
}

type holderRef struct {
	pos token.Pos
	// ret marks call-result/return holders: visible to callers, so
	// always outside any syntactic range.
	ret bool
}

var cache sync.Map // *analysis.Module -> *Result

// Of computes (once per module, cached) the points-to relation.
func Of(m *analysis.Module) *Result {
	if r, ok := cache.Load(m); ok {
		return r.(*Result)
	}
	r := analyze(m)
	if prev, loaded := cache.LoadOrStore(m, r); loaded {
		return prev.(*Result)
	}
	return r
}

// Objects returns every abstract object, by ID.
func (r *Result) Objects() []*Object { return r.objects }

// Object returns the object with the given ID.
func (r *Result) Object(id ObjID) *Object { return r.objects[id] }

// Extern returns the object standing for unanalyzed memory.
func (r *Result) Extern() *Object { return r.objects[r.externObj] }

// SolverStats exposes the underlying solver counters.
func (r *Result) SolverStats() Stats { return r.s.Stats() }

func (r *Result) objsOf(n NodeID) []*Object {
	if n < 0 {
		return nil
	}
	ids := r.s.PointsTo(n)
	out := make([]*Object, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.objects[id])
	}
	return out
}

// ExprObjects returns the objects expr may refer to, or nil when expr
// is untracked (not pointer-like, or not reached by generation).
func (r *Result) ExprObjects(e ast.Expr) []*Object {
	n, ok := r.exprN[e]
	if !ok {
		return nil
	}
	return r.objsOf(n)
}

// VarObjects returns the objects variable v may refer to.
func (r *Result) VarObjects(v *types.Var) []*Object {
	n, ok := r.varN[v]
	if !ok {
		return nil
	}
	return r.objsOf(n)
}

// ReturnObjects returns the objects result i of fn may refer to.
func (r *Result) ReturnObjects(fn *types.Func, i int) []*Object {
	rets := r.retN[fn.Origin()]
	if i >= len(rets) {
		return nil
	}
	return r.objsOf(rets[i])
}

// FieldObjects returns the objects stored in o's field f (nil f = the
// element pseudo-field).
func (r *Result) FieldObjects(o *Object, f *types.Var) []*Object {
	field := ElemField
	if f != nil {
		id, ok := r.fldID[f]
		if !ok {
			id, ok = r.fldPos[f.Pos()]
		}
		if !ok {
			return nil
		}
		field = id
	}
	return r.objsOf(r.s.FieldNode(o.ID, field))
}

// EvalObjects resolves the objects e may refer to. Generation registers
// expression nodes for loads only, so a store's base expression may be
// absent from the expression map; EvalObjects falls back to re-deriving
// the set structurally from the variable and field relations.
func (r *Result) EvalObjects(info *types.Info, e ast.Expr) []*Object {
	e = ast.Unparen(e)
	if objs := r.ExprObjects(e); len(objs) != 0 {
		return objs
	}
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return r.VarObjects(v)
		}
	case *ast.SelectorExpr:
		sel := info.Selections[e]
		if sel == nil || sel.Kind() != types.FieldVal || len(sel.Index()) != 1 {
			return nil
		}
		f, _ := sel.Obj().(*types.Var)
		var out []*Object
		for _, o := range r.EvalObjects(info, e.X) {
			out = append(out, r.FieldObjects(o, f)...)
		}
		return out
	case *ast.IndexExpr:
		var out []*Object
		for _, o := range r.EvalObjects(info, e.X) {
			out = append(out, r.FieldObjects(o, nil)...)
		}
		return out
	case *ast.SliceExpr:
		// A slice expression aliases its base's storage.
		return r.EvalObjects(info, e.X)
	}
	return nil
}

// Aliases reports whether a and b may refer to a common object. Untracked
// expressions conservatively alias everything tracked (returns true)
// unless both are untracked non-pointer expressions, where aliasing is
// meaningless and false is returned.
func (r *Result) Aliases(a, b ast.Expr) bool {
	na, oka := r.exprN[a]
	nb, okb := r.exprN[b]
	if !oka || !okb {
		return oka || okb
	}
	return r.nodesIntersect(na, nb)
}

// MayAlias reports whether the two object sets intersect.
func (r *Result) MayAlias(as, bs []*Object) bool {
	if len(as) == 0 || len(bs) == 0 {
		return false
	}
	seen := map[ObjID]bool{}
	for _, o := range as {
		seen[o.ID] = true
	}
	for _, o := range bs {
		if seen[o.ID] {
			return true
		}
	}
	return false
}

func (r *Result) nodesIntersect(a, b NodeID) bool {
	for _, o := range r.s.PointsTo(a) {
		if r.s.Contains(b, o) {
			return true
		}
	}
	return false
}

// Reachable returns the transitive closure of seeds under field/element
// containment: an object is included when some field or element cell of
// an included object points to it. stop, when non-nil, prunes traversal:
// a stopped object is included but its fields are not followed.
func (r *Result) Reachable(seeds []*Object, stop func(*Object) bool) map[*Object]bool {
	out := map[*Object]bool{}
	var queue []*Object
	add := func(o *Object) {
		if !out[o] {
			out[o] = true
			queue = append(queue, o)
		}
	}
	for _, o := range seeds {
		add(o)
	}
	for len(queue) > 0 {
		o := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if stop != nil && stop(o) {
			continue
		}
		for _, fn := range r.fieldNodesOf(o.ID) {
			for _, id := range r.s.PointsTo(fn) {
				add(r.objects[id])
			}
		}
	}
	return out
}

// fieldNodesOf returns every materialized field/element node of o.
func (r *Result) fieldNodesOf(o ObjID) []NodeID {
	var out []NodeID
	for k, n := range r.s.field {
		if k.obj == o && n >= 0 {
			out = append(out, n)
		}
	}
	return out
}

// Escapes reports whether o is reachable from outside the analyzed
// code: from a package-level variable, from the extern blur (passed to
// or allocated by unanalyzed code), or from the return values of
// exported functions and methods of the analyzed packages.
func (r *Result) Escapes(o *Object) bool {
	r.escOnce.Do(r.computeEscaped)
	return r.escaped.has(int32(o.ID))
}

func (r *Result) computeEscaped() {
	var seeds []*Object
	seen := map[ObjID]bool{}
	addNode := func(n NodeID) {
		for _, id := range r.s.PointsTo(n) {
			if !seen[id] {
				seen[id] = true
				seeds = append(seeds, r.objects[id])
			}
		}
	}
	for v, n := range r.varN {
		if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			addNode(n) // package-level variable
		}
	}
	for fn, rets := range r.retN {
		if fn.Exported() {
			for _, n := range rets {
				addNode(n)
			}
		}
	}
	if !seen[r.externObj] {
		seeds = append(seeds, r.objects[r.externObj])
	}
	var esc bitset
	for o := range r.Reachable(seeds, nil) {
		esc.set(int32(o.ID))
	}
	r.escaped = esc
}

// HolderOutside reports whether some node whose points-to set contains
// o belongs to code outside [start, end): a variable declared outside
// the range, a field of an object allocated outside the range, or a
// call-result/return visible to callers. Analyzers use it to prove a
// context-local allocation is not shared: an object allocated inside a
// parallel callback with no outside holder cannot be reached by any
// other worker.
func (r *Result) HolderOutside(o *Object, start, end token.Pos) bool {
	r.holdOnce.Do(r.computeHolders)
	if int(o.ID) >= len(r.holders) {
		return false
	}
	for _, h := range r.holders[o.ID] {
		if h.ret {
			return true
		}
		if h.pos < start || h.pos >= end {
			return true
		}
	}
	return false
}

func (r *Result) computeHolders() {
	r.holders = make([][]holderRef, len(r.objects))
	add := func(n NodeID, ref holderRef) {
		for _, id := range r.s.PointsTo(n) {
			r.holders[id] = append(r.holders[id], ref)
		}
	}
	for v, n := range r.varN {
		add(n, holderRef{pos: v.Pos()})
	}
	for k, n := range r.s.field {
		if n < 0 {
			continue
		}
		holder := r.objects[k.obj]
		ref := holderRef{pos: holder.Pos()}
		if holder.Kind == KExtern {
			ref.ret = true
		}
		add(r.s.FieldNode(k.obj, k.field), ref)
	}
	for _, rets := range r.retN {
		for _, n := range rets {
			if n >= 0 {
				add(n, holderRef{ret: true})
			}
		}
	}
	for call, results := range r.callN {
		for _, n := range results {
			if n >= 0 {
				add(n, holderRef{pos: call.Pos()})
			}
		}
	}
}
