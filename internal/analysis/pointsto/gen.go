package pointsto

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// gen walks every declared function (and package-level initializer) of
// the module and emits solver constraints. Expression evaluation is
// memoized per ast.Expr, so revisiting syntax never duplicates
// constraints.
//
// Cell model: an abstract object is a memory CELL. A pointer holds the
// cells it may point at; a struct-typed variable holds its own KVar
// cell; `&x` therefore evaluates to x's cell set, and dereferencing a
// pointer-to-struct is the identity on points-to sets (the cells ARE
// the structs). Non-struct cells keep their contents in the Elem
// pseudo-field. This keeps value structs, pointers to structs, and
// auto-(de)referenced method receivers in one uniform rule set.
type gen struct {
	s *Solver
	m *analysis.Module

	decls map[*types.Func]*declInfo

	varN    map[*types.Var]NodeID
	exprN   map[ast.Expr]NodeID
	noNode  map[ast.Expr]bool // memoized "untracked" results
	retN    map[*types.Func][]NodeID
	callN   map[*ast.CallExpr][]NodeID
	litRets map[*ast.FuncLit][]NodeID
	litDone map[*ast.FuncLit]bool

	fldByPos map[token.Pos]int32
	fldByVar map[*types.Var]int32
	fldVar   map[int32]*types.Var // reverse map, for the solver's TypeFilter
	nextFld  int32

	funcObjs map[*types.Func]ObjID
	addrObjs map[*types.Var]ObjID
	varCells map[*types.Var]ObjID

	objects   []*Object
	externObj ObjID
	externN   NodeID // node holding exactly {externObj}

	pending []*pendingCall
	bound   map[bindKey]bool

	curPkg *analysis.Package
	curFn  *types.Func
}

type declInfo struct {
	decl *ast.FuncDecl
	pkg  *analysis.Package
}

type pendingCall struct {
	call    *ast.CallExpr
	pkg     *analysis.Package
	funNode NodeID // points to KFunc objects, or concrete receivers (iface)
	iface   *types.Func
	args    []NodeID
	argT    []types.Type
	results []NodeID
	spread  bool // call has `args...`
	matched bool // at least one target bound
}

type bindKey struct {
	call   *ast.CallExpr
	target ObjID       // func object, or
	method *types.Func // (iface) concrete method per receiver object
}

func analyze(m *analysis.Module) *Result {
	g := &gen{
		s:        NewSolver(),
		m:        m,
		decls:    map[*types.Func]*declInfo{},
		varN:     map[*types.Var]NodeID{},
		exprN:    map[ast.Expr]NodeID{},
		noNode:   map[ast.Expr]bool{},
		retN:     map[*types.Func][]NodeID{},
		callN:    map[*ast.CallExpr][]NodeID{},
		litRets:  map[*ast.FuncLit][]NodeID{},
		litDone:  map[*ast.FuncLit]bool{},
		fldByPos: map[token.Pos]int32{},
		fldByVar: map[*types.Var]int32{},
		fldVar:   map[int32]*types.Var{},
		nextFld:  NamedFieldBase,
		funcObjs: map[*types.Func]ObjID{},
		addrObjs: map[*types.Var]ObjID{},
		varCells: map[*types.Var]ObjID{},
		bound:    map[bindKey]bool{},
	}
	g.s.TypeFilter = g.typeFilter
	g.externObj = g.newObject(KExtern, nil, nil, nil)
	g.externN = g.s.NewNode()
	g.s.AddAddr(g.externN, g.externObj)
	// Extern memory points at extern memory.
	g.s.AddCopy(g.s.FieldNode(g.externObj, ElemField), g.externN)

	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil {
						g.decls[fn.Origin()] = &declInfo{decl: fd, pkg: pkg}
					}
				}
			}
		}
	}
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					g.walkDecl(pkg, fn.Origin(), d)
				case *ast.GenDecl:
					g.walkGlobals(pkg, d)
				}
			}
		}
	}

	g.s.Solve()
	g.resolveIndirect()

	r := &Result{
		Module:    m,
		s:         g.s,
		objects:   g.objects,
		varN:      g.varN,
		exprN:     g.exprN,
		retN:      g.retN,
		callN:     g.callN,
		fldID:     g.fldByVar,
		fldPos:    g.fldByPos,
		externObj: g.externObj,
	}
	return r
}

// resolveIndirect runs the outer fixpoint binding indirect call sites
// to the targets their points-to sets reveal, then blurs any site that
// never found a target.
func (g *gen) resolveIndirect() {
	for {
		added := false
		for _, pc := range g.pending {
			for _, id := range g.s.PointsTo(pc.funNode) {
				o := g.objects[id]
				if pc.iface != nil {
					if fn := g.concreteMethod(o, pc.iface); fn != nil {
						k := bindKey{call: pc.call, method: fn, target: id}
						if !g.bound[k] {
							g.bound[k] = true
							recvN := g.s.NewNode()
							g.s.AddAddr(recvN, id)
							g.bindTarget(pc, fn, nil, recvN)
							pc.matched = true
							added = true
						}
					}
					continue
				}
				if o.Kind != KFunc {
					continue
				}
				k := bindKey{call: pc.call, target: id}
				if g.bound[k] {
					continue
				}
				g.bound[k] = true
				g.bindTarget(pc, o.Fn, o.Lit, o.recv)
				pc.matched = true
				added = true
			}
		}
		g.s.Solve()
		if !added {
			break
		}
	}
	// Unmatched indirect calls: conservative extern blur.
	for _, pc := range g.pending {
		if pc.matched {
			continue
		}
		for _, a := range pc.args {
			g.blurIn(a)
		}
		sig, _ := pc.pkg.TypesInfo.TypeOf(pc.call.Fun).Underlying().(*types.Signature)
		g.blurResults(pc.results, sig)
	}
	g.s.Solve()
}

// concreteMethod resolves interface method m on receiver object o.
func (g *gen) concreteMethod(o *Object, m *types.Func) *types.Func {
	if o.Type == nil || o.Kind == KFunc || o.Kind == KExtern {
		return nil
	}
	for _, recv := range []types.Type{o.Type, types.NewPointer(o.Type)} {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// bindTarget wires pc's arguments/results to a resolved callee: a
// declared function, a func literal, or (externally declared) the blur.
func (g *gen) bindTarget(pc *pendingCall, fn *types.Func, lit *ast.FuncLit, recvN NodeID) {
	var sig *types.Signature
	var params []NodeID
	var rets []NodeID
	switch {
	case lit != nil:
		sig, _ = g.litType(pc.pkg, lit)
		if sig == nil {
			return
		}
		params = g.paramNodes(sig)
		rets = g.litRets[lit]
	case fn != nil:
		fn = fn.Origin()
		if g.decls[fn] == nil {
			// External target: blur.
			for _, a := range pc.args {
				g.blurIn(a)
			}
			g.blurResults(pc.results, fn.Signature())
			return
		}
		sig = fn.Signature()
		params = g.paramNodes(sig)
		rets = g.retNodes(fn)
	default:
		return
	}
	if recvN >= 0 && sig.Recv() != nil {
		g.assign(g.varNode(sig.Recv()), recvN, sig.Recv().Type())
	}
	g.bindArgs(sig, params, pc.args, pc.argT, pc.spread)
	for i, res := range pc.results {
		if res >= 0 && i < len(rets) && rets[i] >= 0 {
			g.s.AddCopy(res, rets[i])
		}
	}
}

func (g *gen) paramNodes(sig *types.Signature) []NodeID {
	out := make([]NodeID, sig.Params().Len())
	for i := range out {
		out[i] = g.varNode(sig.Params().At(i))
	}
	return out
}

// bindArgs assigns argument nodes to parameter nodes, packing variadic
// tails into a fresh slice object.
func (g *gen) bindArgs(sig *types.Signature, params, args []NodeID, argT []types.Type, spread bool) {
	np := sig.Params().Len()
	for i := 0; i < np; i++ {
		pv := sig.Params().At(i)
		if sig.Variadic() && i == np-1 && !spread {
			if params[i] < 0 {
				continue
			}
			pack := g.newObject(KAlloc, nil, g.curPkg, pv.Type())
			tmp := g.s.NewNode()
			g.s.AddAddr(tmp, pack)
			g.s.AddCopy(params[i], tmp)
			for j := i; j < len(args); j++ {
				if args[j] >= 0 {
					g.s.AddStore(tmp, ElemField, args[j])
				}
			}
			return
		}
		if i < len(args) && args[i] >= 0 && params[i] >= 0 {
			t := pv.Type()
			if i < len(argT) && argT[i] != nil {
				t = pv.Type() // parameter type drives the copy shape
			}
			g.assign(params[i], args[i], t)
		}
	}
}

func (g *gen) retNodes(fn *types.Func) []NodeID {
	fn = fn.Origin()
	if rets, ok := g.retN[fn]; ok {
		return rets
	}
	n := fn.Signature().Results().Len()
	rets := make([]NodeID, n)
	for i := range rets {
		if pointerLike(fn.Signature().Results().At(i).Type()) {
			rets[i] = g.s.NewNode()
		} else {
			rets[i] = -1
		}
	}
	g.retN[fn] = rets
	return rets
}

func (g *gen) litType(pkg *analysis.Package, lit *ast.FuncLit) (*types.Signature, bool) {
	sig, ok := pkg.TypesInfo.TypeOf(lit).(*types.Signature)
	return sig, ok
}

func (g *gen) newObject(kind Kind, site ast.Node, pkg *analysis.Package, t types.Type) ObjID {
	id := g.s.NewObject()
	g.objects = append(g.objects, &Object{
		ID:   id,
		Kind: kind,
		Site: site,
		Type: t,
		Pkg:  pkg,
		Fn:   g.curFn,
		recv: -1,
	})
	return id
}

func (g *gen) fieldID(v *types.Var) int32 {
	if v.Pos() != token.NoPos {
		if id, ok := g.fldByPos[v.Pos()]; ok {
			g.fldByVar[v] = id
			return id
		}
		id := g.nextFld
		g.nextFld++
		g.fldByPos[v.Pos()] = id
		g.fldByVar[v] = id
		g.fldVar[id] = v
		return id
	}
	if id, ok := g.fldByVar[v]; ok {
		return id
	}
	id := g.nextFld
	g.nextFld++
	g.fldByVar[v] = id
	g.fldVar[id] = v
	return id
}

// typeFilter is the solver's TypeFilter: it vetoes named-field cells on
// objects whose type cannot declare that field. Elem/MapKey are the cell
// model's generic contents slots and stay unrestricted; function objects
// carry no writable cells at all. Without the veto, any object carried
// through an over-merged node (most often the extern blur) accretes the
// field cells of every unrelated store that fires over that node.
func (g *gen) typeFilter(o ObjID, field int32) bool {
	obj := g.objects[o]
	if obj.Kind == KFunc {
		return false
	}
	if field == ElemField || field == MapKeyField {
		return true
	}
	if obj.Type == nil {
		return true // extern and typeless cells: no veto
	}
	return hasFieldAtPos(obj.Type, g.fldVar[field], 0)
}

// hasFieldAtPos reports whether t (a struct or pointer-to-struct, after
// Named unwrapping) declares a field sharing f's declaration position —
// directly or promoted through embedding. Position identity is how
// fieldID canonicalizes generic instantiations, so it is the comparison
// here too.
func hasFieldAtPos(t types.Type, f *types.Var, depth int) bool {
	if f == nil || depth > 8 {
		return true // unknown field or pathological nesting: no veto
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		sf := st.Field(i)
		if sf.Pos() == f.Pos() {
			return true
		}
		if sf.Anonymous() && hasFieldAtPos(sf.Type(), f, depth+1) {
			return true
		}
	}
	return false
}

// varNode returns (creating on demand) the node of variable v. Aggregate
// (struct/array) variables are seeded with their own storage cell.
func (g *gen) varNode(v *types.Var) NodeID {
	if v == nil || v.Name() == "_" || !pointerLike(v.Type()) {
		return -1
	}
	if n, ok := g.varN[v]; ok {
		return n
	}
	n := g.s.NewNode()
	g.varN[v] = n
	if isAggregate(v.Type()) {
		obj := g.newObject(KVar, declIdent(v), g.pkgOf(v), v.Type())
		g.objects[obj].Var = v
		g.varCells[v] = obj
		g.s.AddAddr(n, obj)
		g.seedAggregate(obj, v.Type(), 0, nil)
	}
	return n
}

func declIdent(v *types.Var) ast.Node { return posNode{v.Pos()} }

// posNode lets a bare position stand in for syntax in Object.Site.
type posNode struct{ pos token.Pos }

func (p posNode) Pos() token.Pos { return p.pos }
func (p posNode) End() token.Pos { return p.pos }

func (g *gen) pkgOf(v *types.Var) *analysis.Package {
	if v.Pkg() == nil {
		return nil
	}
	for _, pkg := range g.m.Pkgs {
		if pkg.Types == v.Pkg() {
			return pkg
		}
	}
	return nil
}

// seedAggregate gives struct-typed (and aggregate-element) cells inside
// obj their own KInner objects so stores through nested value fields
// always have a target. Depth-capped; recursive types cut off via seen.
func (g *gen) seedAggregate(obj ObjID, t types.Type, depth int, seen []types.Type) {
	if depth > 4 {
		return
	}
	for _, s := range seen {
		if types.Identical(s, t) {
			return
		}
	}
	seen = append(seen, t)
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !pointerLike(f.Type()) {
				continue
			}
			if isAggregate(f.Type()) {
				inner := g.newObject(KInner, nil, nil, f.Type())
				g.s.AddAddr(g.s.FieldNode(obj, g.fieldID(f)), inner)
				g.seedAggregate(inner, f.Type(), depth+1, seen)
			}
		}
	case *types.Array:
		if pointerLike(u.Elem()) && isAggregate(u.Elem()) {
			inner := g.newObject(KInner, nil, nil, u.Elem())
			g.s.AddAddr(g.s.FieldNode(obj, ElemField), inner)
			g.seedAggregate(inner, u.Elem(), depth+1, seen)
		}
	}
}

// seedParam gives a declared function's pointer-like parameter a
// symbolic KParam object — "whatever the caller passed" — so alias
// queries inside the function are meaningful even when no analyzed
// caller binds the parameter. Aggregate parameters already own a KVar
// cell from varNode.
func (g *gen) seedParam(v *types.Var) {
	n := g.varNode(v)
	if n < 0 {
		return
	}
	if isAggregate(v.Type()) {
		if cell, ok := g.varCells[v]; ok {
			g.symFields(cell, v.Type(), 1)
		}
		return
	}
	if o, ok := g.symValue(v.Type(), 0); ok {
		g.s.AddAddr(n, o)
	}
}

// symValue builds a symbolic cell for an unknown value of type t,
// expanding its reachable structure two levels deep.
func (g *gen) symValue(t types.Type, depth int) (ObjID, bool) {
	if depth > 2 {
		return 0, false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		et := u.Elem()
		o := g.newObject(KParam, nil, nil, et)
		if isAggregate(et) {
			g.symFields(o, et, depth+1)
		} else if pointerLike(et) {
			if eo, ok := g.symValue(et, depth+1); ok {
				g.s.AddAddr(g.s.FieldNode(o, ElemField), eo)
			}
		}
		return o, true
	case *types.Slice:
		return g.symContainer(t, u.Elem(), depth)
	case *types.Map:
		return g.symContainer(t, u.Elem(), depth)
	case *types.Chan:
		return g.symContainer(t, u.Elem(), depth)
	case *types.Struct, *types.Array:
		o := g.newObject(KParam, nil, nil, t)
		g.symFields(o, t, depth+1)
		return o, true
	}
	return 0, false
}

func (g *gen) symContainer(t, elem types.Type, depth int) (ObjID, bool) {
	o := g.newObject(KParam, nil, nil, t)
	if pointerLike(elem) {
		if eo, ok := g.symValue(elem, depth+1); ok {
			g.s.AddAddr(g.s.FieldNode(o, ElemField), eo)
		}
	}
	return o, true
}

// symFields populates a symbolic aggregate cell's pointer-like fields.
func (g *gen) symFields(o ObjID, t types.Type, depth int) {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !pointerLike(f.Type()) {
				continue
			}
			if fo, ok := g.symValue(f.Type(), depth); ok {
				g.s.AddAddr(g.s.FieldNode(o, g.fieldID(f)), fo)
			}
		}
	case *types.Array:
		if pointerLike(u.Elem()) {
			if eo, ok := g.symValue(u.Elem(), depth); ok {
				g.s.AddAddr(g.s.FieldNode(o, ElemField), eo)
			}
		}
	}
}

// seedElemCell seeds the element cell of a fresh slice/map/chan/pointer
// object whose element type is an aggregate.
func (g *gen) seedElemCell(obj ObjID, elem types.Type) {
	if elem == nil || !pointerLike(elem) || !isAggregate(elem) {
		return
	}
	inner := g.newObject(KInner, nil, nil, elem)
	g.s.AddAddr(g.s.FieldNode(obj, ElemField), inner)
	g.seedAggregate(inner, elem, 1, nil)
}

// pointerLike reports whether values of type t can refer to memory.
func pointerLike(t types.Type) bool {
	return pointerLikeDepth(t, 0)
}

func pointerLikeDepth(t types.Type, depth int) bool {
	if t == nil || depth > 8 {
		return depth > 8 // deep recursion: assume yes, stay sound
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerLikeDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerLikeDepth(u.Elem(), depth+1)
	case *types.TypeParam:
		return true
	}
	return true // unknown type forms: conservative
}

// isAggregate reports whether t's values are modeled as storage cells
// of their own (struct or array).
func isAggregate(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}

func isStructish(t types.Type) bool { return t != nil && isAggregate(t) }

// blurIn routes a node's objects into the extern blur.
func (g *gen) blurIn(n NodeID) {
	if n >= 0 {
		g.s.AddStore(g.externN, ElemField, n)
	}
}

// blurOut makes a node receive the extern blur, restricted to the
// objects a value of type t could actually refer to. Without the type
// restriction every unanalyzed call result would alias everything ever
// passed to unanalyzed code — os.Environ() aliasing a []*Vertex the
// module once handed to sort.Slice. A nil t admits everything.
func (g *gen) blurOut(n NodeID, t types.Type) {
	if n < 0 {
		return
	}
	elem := g.s.FieldNode(g.externObj, ElemField)
	if t == nil {
		g.s.AddCopy(n, elem)
		return
	}
	g.s.AddFilteredCopy(n, elem, g.blurKeep(t))
}

// blurResults blurs each call result with its declared type.
func (g *gen) blurResults(results []NodeID, sig *types.Signature) {
	for i, res := range results {
		var t types.Type
		if sig != nil && i < sig.Results().Len() {
			t = sig.Results().At(i).Type()
		}
		g.blurOut(res, t)
	}
}

func (g *gen) blurKeep(t types.Type) func(ObjID) bool {
	return func(o ObjID) bool {
		obj := g.objects[o]
		if obj.Type == nil {
			return true // the extern object itself
		}
		return blurCompatible(obj.Type, t)
	}
}

// blurCompatible reports whether a cell of type objT could be referred
// to by a value of type t flowing out of unanalyzed code. Cells are
// compared by the value they store: pointer results match cells of
// their pointee type, reference results (slice/map/chan) match cells
// carrying the same reference type, interface results match anything.
func blurCompatible(objT, t types.Type) bool {
	if containsTypeParam(objT, 0) || containsTypeParam(t, 0) {
		return true // uninstantiated generics: no precise comparison
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return true
	case *types.Pointer:
		return types.Identical(objT.Underlying(), u.Elem().Underlying()) ||
			types.Identical(objT.Underlying(), u)
	case *types.Signature:
		_, ok := objT.Underlying().(*types.Signature)
		return ok
	default:
		return types.Identical(objT.Underlying(), u)
	}
}

// containsTypeParam reports whether t mentions a type parameter (capped
// structural walk; false negatives only at absurd nesting depth).
func containsTypeParam(t types.Type, depth int) bool {
	if depth > 6 {
		return true // give up conservatively
	}
	switch u := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Named:
		if u.TypeParams().Len() > 0 && u.TypeArgs().Len() == 0 {
			return true
		}
		for i := 0; i < u.TypeArgs().Len(); i++ {
			if containsTypeParam(u.TypeArgs().At(i), depth+1) {
				return true
			}
		}
		return false
	case *types.Pointer:
		return containsTypeParam(u.Elem(), depth+1)
	case *types.Slice:
		return containsTypeParam(u.Elem(), depth+1)
	case *types.Array:
		return containsTypeParam(u.Elem(), depth+1)
	case *types.Chan:
		return containsTypeParam(u.Elem(), depth+1)
	case *types.Map:
		return containsTypeParam(u.Key(), depth+1) || containsTypeParam(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsTypeParam(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Signature:
		return containsTypeParam(u.Params(), depth+1) || containsTypeParam(u.Results(), depth+1)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if containsTypeParam(u.At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	}
	return false
}

// ---- walking ----

// owner identifies the function unit a return statement belongs to.
type owner struct {
	sig  *types.Signature
	rets []NodeID
}

func (g *gen) walkDecl(pkg *analysis.Package, fn *types.Func, d *ast.FuncDecl) {
	g.curPkg, g.curFn = pkg, fn
	defer func() { g.curFn = nil }()
	sig := fn.Signature()
	if sig.Recv() != nil {
		g.varNode(sig.Recv())
		g.seedParam(sig.Recv())
	}
	g.paramNodes(sig)
	for i := 0; i < sig.Params().Len(); i++ {
		g.seedParam(sig.Params().At(i))
	}
	ow := &owner{sig: sig, rets: g.retNodes(fn)}
	g.walkUnit(pkg, d.Body, ow)
	g.flushNamedResults(sig, ow.rets)
}

func (g *gen) flushNamedResults(sig *types.Signature, rets []NodeID) {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		v := res.At(i)
		if v.Name() != "" && v.Name() != "_" {
			if n := g.varNode(v); n >= 0 && i < len(rets) && rets[i] >= 0 {
				g.s.AddCopy(rets[i], n)
			}
		}
	}
}

func (g *gen) walkGlobals(pkg *analysis.Package, d *ast.GenDecl) {
	if d.Tok != token.VAR {
		return
	}
	g.curPkg, g.curFn = pkg, nil
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		g.handleVarSpec(pkg, vs)
	}
}

func (g *gen) handleVarSpec(pkg *analysis.Package, vs *ast.ValueSpec) {
	info := pkg.TypesInfo
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		// var a, b = f()
		if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
			g.nodeOf(pkg, call)
			results := g.callN[call]
			for i, name := range vs.Names {
				v, _ := info.Defs[name].(*types.Var)
				if v == nil {
					continue
				}
				dst := g.varNode(v)
				if dst >= 0 && i < len(results) && results[i] >= 0 {
					g.assign(dst, results[i], v.Type())
				}
			}
			return
		}
	}
	for i, name := range vs.Names {
		v, _ := info.Defs[name].(*types.Var)
		if v == nil {
			continue
		}
		dst := g.varNode(v)
		if i < len(vs.Values) {
			src := g.nodeOf(pkg, vs.Values[i])
			if dst >= 0 && src >= 0 {
				g.assign(dst, src, v.Type())
			}
		}
	}
}

// walkUnit processes one function body. Nested literals are walked by
// nodeOf (with their own owner); the inspection prunes them here.
func (g *gen) walkUnit(pkg *analysis.Package, body ast.Node, ow *owner) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			g.nodeOf(pkg, n)
			return false
		case *ast.AssignStmt:
			g.handleAssign(pkg, n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						g.handleVarSpec(pkg, vs)
					}
				}
			}
		case *ast.RangeStmt:
			g.handleRange(pkg, n)
		case *ast.ReturnStmt:
			g.handleReturn(pkg, n, ow)
		case *ast.SendStmt:
			ch := g.nodeOf(pkg, n.Chan)
			v := g.nodeOf(pkg, n.Value)
			if ch >= 0 && v >= 0 {
				g.s.AddStore(ch, ElemField, v)
			}
		case *ast.TypeSwitchStmt:
			g.handleTypeSwitch(pkg, n)
		case *ast.CallExpr:
			g.nodeOf(pkg, n)
		case *ast.CompositeLit:
			g.nodeOf(pkg, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND || n.Op == token.ARROW {
				g.nodeOf(pkg, n)
			}
		}
		return true
	})
}

func (g *gen) handleReturn(pkg *analysis.Package, ret *ast.ReturnStmt, ow *owner) {
	if ow == nil || len(ret.Results) == 0 {
		return
	}
	if len(ret.Results) == 1 && ow.sig.Results().Len() > 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			g.nodeOf(pkg, call)
			for i, res := range g.callN[call] {
				if i < len(ow.rets) && ow.rets[i] >= 0 && res >= 0 {
					g.s.AddCopy(ow.rets[i], res)
				}
			}
			return
		}
	}
	for i, e := range ret.Results {
		src := g.nodeOf(pkg, e)
		if i < len(ow.rets) && ow.rets[i] >= 0 && src >= 0 {
			g.s.AddCopy(ow.rets[i], src)
		}
	}
}

func (g *gen) handleTypeSwitch(pkg *analysis.Package, sw *ast.TypeSwitchStmt) {
	info := pkg.TypesInfo
	// The switched expression.
	var src NodeID = -1
	switch s := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := ast.Unparen(s.Rhs[0]).(*ast.TypeAssertExpr); ok {
				src = g.nodeOf(pkg, ta.X)
			}
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(s.X).(*ast.TypeAssertExpr); ok {
			src = g.nodeOf(pkg, ta.X)
		}
	}
	if src < 0 {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if v, ok := info.Implicits[cc].(*types.Var); ok {
			if dst := g.varNode(v); dst >= 0 {
				g.assign(dst, src, v.Type())
			}
		}
	}
}

func (g *gen) handleRange(pkg *analysis.Package, r *ast.RangeStmt) {
	info := pkg.TypesInfo
	x := g.nodeOf(pkg, r.X)
	t := info.TypeOf(r.X)
	if t == nil {
		return
	}
	assignVar := func(e ast.Expr, field int32, vt types.Type) {
		if e == nil || x < 0 {
			return
		}
		tmp := g.s.NewNode()
		g.s.AddLoad(tmp, x, field)
		g.assignToLValue(pkg, e, tmp, vt)
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		assignVar(r.Value, ElemField, u.Elem())
	case *types.Array:
		assignVar(r.Value, ElemField, u.Elem())
	case *types.Pointer: // *[N]T
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			assignVar(r.Value, ElemField, arr.Elem())
		}
	case *types.Map:
		assignVar(r.Key, MapKeyField, u.Key())
		assignVar(r.Value, ElemField, u.Elem())
	case *types.Chan:
		assignVar(r.Key, ElemField, u.Elem())
	case *types.Signature:
		// range-over-func: conservative blur of the iterator.
		g.blurIn(x)
	}
}

func (g *gen) handleAssign(pkg *analysis.Package, as *ast.AssignStmt) {
	info := pkg.TypesInfo
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			src := g.nodeOf(pkg, as.Rhs[i])
			if src < 0 {
				continue
			}
			g.assignToLValue(pkg, as.Lhs[i], src, info.TypeOf(as.Lhs[i]))
		}
		return
	}
	if len(as.Rhs) != 1 {
		return
	}
	// Tuple forms: call, comma-ok map/chan/assert.
	rhs := ast.Unparen(as.Rhs[0])
	var results []NodeID
	switch r := rhs.(type) {
	case *ast.CallExpr:
		g.nodeOf(pkg, r)
		results = g.callN[r]
	case *ast.TypeAssertExpr:
		results = []NodeID{g.nodeOf(pkg, r.X), -1}
	case *ast.IndexExpr: // v, ok := m[k]
		base := g.nodeOf(pkg, r.X)
		tmp := NodeID(-1)
		if base >= 0 {
			tmp = g.s.NewNode()
			g.s.AddLoad(tmp, base, ElemField)
		}
		results = []NodeID{tmp, -1}
	case *ast.UnaryExpr: // v, ok := <-ch
		if r.Op == token.ARROW {
			base := g.nodeOf(pkg, r.X)
			tmp := NodeID(-1)
			if base >= 0 {
				tmp = g.s.NewNode()
				g.s.AddLoad(tmp, base, ElemField)
			}
			results = []NodeID{tmp, -1}
		}
	}
	for i, lhs := range as.Lhs {
		if i < len(results) && results[i] >= 0 {
			g.assignToLValue(pkg, lhs, results[i], info.TypeOf(lhs))
		}
	}
}

// assignToLValue stores src into the location named by lhs.
func (g *gen) assignToLValue(pkg *analysis.Package, lhs ast.Expr, src NodeID, t types.Type) {
	info := pkg.TypesInfo
	lhs = ast.Unparen(lhs)
	if t != nil && !pointerLike(t) {
		return
	}
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		v, _ := info.Defs[l].(*types.Var)
		if v == nil {
			v, _ = info.Uses[l].(*types.Var)
		}
		if dst := g.varNode(v); dst >= 0 {
			g.assign(dst, src, t)
		}
	case *ast.SelectorExpr:
		if f := analysis.FieldOf(info, l); f != nil {
			base := g.selBase(pkg, l)
			if base >= 0 {
				if isStructish(t) {
					cell := g.s.NewNode()
					g.s.AddLoad(cell, base, g.fieldID(f))
					g.assignStruct(cell, src, t)
				}
				g.s.AddStore(base, g.fieldID(f), src)
			}
			return
		}
		// Qualified package var: pkg.X
		if v, ok := info.Uses[l.Sel].(*types.Var); ok {
			if dst := g.varNode(v); dst >= 0 {
				g.assign(dst, src, t)
			}
		}
	case *ast.IndexExpr:
		base := g.nodeOf(pkg, l.X)
		if base < 0 {
			return
		}
		if bt := info.TypeOf(l.X); bt != nil {
			if mt, ok := bt.Underlying().(*types.Map); ok {
				if k := g.nodeOf(pkg, l.Index); k >= 0 {
					g.s.AddStore(base, MapKeyField, k)
				}
				_ = mt
			}
		}
		if isStructish(t) {
			cell := g.s.NewNode()
			g.s.AddLoad(cell, base, ElemField)
			g.assignStruct(cell, src, t)
		}
		g.s.AddStore(base, ElemField, src)
	case *ast.StarExpr:
		base := g.nodeOf(pkg, l.X)
		if base < 0 {
			return
		}
		if isStructish(t) {
			// The pointed-at cells ARE the struct objects.
			g.assignStruct(base, src, t)
			return
		}
		g.s.AddStore(base, ElemField, src)
	}
}

// assign is the generic value copy: plain inclusion for references,
// field-wise cell copy for aggregates.
func (g *gen) assign(dst, src NodeID, t types.Type) {
	if dst < 0 || src < 0 {
		return
	}
	if isStructish(t) {
		g.assignStruct(dst, src, t)
		// Also propagate the cell identity: `y := x` then `&y` vs `&x`
		// are distinct cells, but y's set keeps its own KVar object from
		// varNode seeding, so copying the sets here would merge cells.
		// Instead only fields flow. (Aliases of x and y stay distinct.)
		return
	}
	g.s.AddCopy(dst, src)
}

// assignStruct copies every pointer-like field between the cells in dst
// and src (both nodes hold struct cell objects).
func (g *gen) assignStruct(dst, src NodeID, t types.Type) {
	if dst < 0 || src < 0 || t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !pointerLike(f.Type()) {
				continue
			}
			tmp := g.s.NewNode()
			g.s.AddLoad(tmp, src, g.fieldID(f))
			g.s.AddStore(dst, g.fieldID(f), tmp)
		}
	case *types.Array:
		if pointerLike(u.Elem()) {
			tmp := g.s.NewNode()
			g.s.AddLoad(tmp, src, ElemField)
			g.s.AddStore(dst, ElemField, tmp)
		}
	}
}

// selBase evaluates the base of a field selection, walking the implicit
// field path of embedded fields. The cell model auto-dereferences
// pointers (pointer sets hold the struct cells), so no * handling is
// needed.
func (g *gen) selBase(pkg *analysis.Package, sel *ast.SelectorExpr) NodeID {
	info := pkg.TypesInfo
	base := g.nodeOf(pkg, sel.X)
	s, ok := info.Selections[sel]
	if !ok || base < 0 {
		return base
	}
	// For embedded fields the path is [e1, e2, ..., f]; the base of the
	// final store/load is everything but the last step.
	idx := s.Index()
	t := info.TypeOf(sel.X)
	for _, step := range idx[:len(idx)-1] {
		st := derefStruct(t)
		if st == nil {
			return base
		}
		f := st.Field(step)
		tmp := g.s.NewNode()
		g.s.AddLoad(tmp, base, g.fieldID(f))
		base = tmp
		t = f.Type()
	}
	return base
}

func derefStruct(t types.Type) *types.Struct {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}
