package pointsto

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// nodeOf evaluates expr to the node holding its points-to set, emitting
// constraints on first visit. Returns -1 for untracked (non-pointer)
// expressions. Memoized per ast.Expr.
func (g *gen) nodeOf(pkg *analysis.Package, expr ast.Expr) NodeID {
	if expr == nil {
		return -1
	}
	expr = ast.Unparen(expr)
	if n, ok := g.exprN[expr]; ok {
		return n
	}
	if g.noNode[expr] {
		return -1
	}
	n := g.evalExpr(pkg, expr)
	if n >= 0 {
		g.exprN[expr] = n
	} else {
		g.noNode[expr] = true
	}
	return n
}

func (g *gen) evalExpr(pkg *analysis.Package, expr ast.Expr) NodeID {
	info := pkg.TypesInfo
	t := info.TypeOf(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		switch o := obj.(type) {
		case *types.Var:
			return g.varNode(o)
		case *types.Func:
			return g.funcValueNode(o, -1)
		}
		return -1

	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				f := analysis.FieldOf(info, e)
				base := g.selBase(pkg, e)
				if f == nil || base < 0 {
					return -1
				}
				if !pointerLike(f.Type()) {
					return -1
				}
				tmp := g.s.NewNode()
				g.s.AddLoad(tmp, base, g.fieldID(f))
				return tmp
			case types.MethodVal:
				fn, _ := info.Uses[e.Sel].(*types.Func)
				if fn == nil {
					return -1
				}
				return g.funcValueNode(fn, g.nodeOf(pkg, e.X))
			case types.MethodExpr:
				fn, _ := info.Uses[e.Sel].(*types.Func)
				if fn == nil {
					return -1
				}
				return g.funcValueNode(fn, -1)
			}
			return -1
		}
		// Qualified ident: pkg.X
		switch o := info.Uses[e.Sel].(type) {
		case *types.Var:
			return g.varNode(o)
		case *types.Func:
			return g.funcValueNode(o, -1)
		}
		return -1

	case *ast.IndexExpr:
		// Generic instantiation? Then this denotes the function itself.
		if fn, ok := info.Uses[baseIdentOf(e.X)].(*types.Func); ok && isFuncExpr(info, e.X) {
			return g.funcValueNode(fn, -1)
		}
		return g.indexLoad(pkg, e.X)
	case *ast.IndexListExpr:
		if fn, ok := info.Uses[baseIdentOf(e.X)].(*types.Func); ok && isFuncExpr(info, e.X) {
			return g.funcValueNode(fn, -1)
		}
		return -1

	case *ast.SliceExpr:
		return g.nodeOf(pkg, e.X)

	case *ast.StarExpr:
		base := g.nodeOf(pkg, e.X)
		if base < 0 || t == nil || !pointerLike(t) {
			return -1
		}
		if isStructish(t) {
			return base // pointed-at cells are the struct objects
		}
		tmp := g.s.NewNode()
		g.s.AddLoad(tmp, base, ElemField)
		return tmp

	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			return g.addrOf(pkg, e.X)
		case token.ARROW:
			base := g.nodeOf(pkg, e.X)
			if base < 0 {
				return -1
			}
			tmp := g.s.NewNode()
			g.s.AddLoad(tmp, base, ElemField)
			return tmp
		}
		return -1

	case *ast.CompositeLit:
		return g.compositeNode(pkg, e, t)

	case *ast.FuncLit:
		return g.funcLitNode(pkg, e)

	case *ast.CallExpr:
		return g.callNode(pkg, e)

	case *ast.TypeAssertExpr:
		if e.Type == nil {
			return -1
		}
		return g.nodeOf(pkg, e.X)

	case *ast.BinaryExpr, *ast.BasicLit, *ast.KeyValueExpr,
		*ast.ArrayType, *ast.MapType, *ast.StructType, *ast.ChanType,
		*ast.FuncType, *ast.InterfaceType, *ast.Ellipsis:
		return -1
	}
	return -1
}

func baseIdentOf(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

func isFuncExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

func (g *gen) indexLoad(pkg *analysis.Package, base ast.Expr) NodeID {
	b := g.nodeOf(pkg, base)
	if b < 0 {
		return -1
	}
	bt := pkg.TypesInfo.TypeOf(base)
	if bt != nil {
		if basic, ok := bt.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			return -1
		}
	}
	tmp := g.s.NewNode()
	g.s.AddLoad(tmp, b, ElemField)
	return tmp
}

// addrOf evaluates &x. In the cell model the address of an aggregate is
// its cell set; the address of a scalar local is a one-off KVar cell
// whose element is kept in sync with the variable's own node; the
// address of a field/element is approximated by the enclosing cells.
func (g *gen) addrOf(pkg *analysis.Package, x ast.Expr) NodeID {
	info := pkg.TypesInfo
	x = ast.Unparen(x)
	switch e := x.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil {
			v, _ = info.Defs[e].(*types.Var)
		}
		if v == nil {
			return -1
		}
		if isAggregate(v.Type()) {
			return g.varNode(v)
		}
		return g.scalarAddr(v)
	case *ast.CompositeLit:
		return g.nodeOf(pkg, e)
	case *ast.StarExpr:
		return g.nodeOf(pkg, e.X) // &*p == p
	case *ast.SelectorExpr:
		if f := analysis.FieldOf(info, e); f != nil {
			if isAggregate(f.Type()) {
				// The field cell objects themselves.
				base := g.selBase(pkg, e)
				if base < 0 {
					return -1
				}
				tmp := g.s.NewNode()
				g.s.AddLoad(tmp, base, g.fieldID(f))
				return tmp
			}
			// Pointer-to-scalar-field: approximate by the holder cells;
			// stores through it blur into the holder's element bucket.
			return g.selBase(pkg, e)
		}
		// &pkg.Var
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			if isAggregate(v.Type()) {
				return g.varNode(v)
			}
			return g.scalarAddr(v)
		}
		return -1
	case *ast.IndexExpr:
		et := info.TypeOf(x)
		if et != nil && isAggregate(et) {
			return g.indexLoad(pkg, e.X) // element cells
		}
		return g.nodeOf(pkg, e.X) // approximate: the backing store
	}
	return g.nodeOf(pkg, x)
}

// scalarAddr returns the cell object of an address-taken scalar
// variable; loads and stores through the pointer flow through the
// cell's element node, which is wired to the variable's own node.
func (g *gen) scalarAddr(v *types.Var) NodeID {
	obj, ok := g.addrObjs[v]
	if !ok {
		obj = g.newObject(KVar, declIdent(v), g.pkgOf(v), v.Type())
		g.objects[obj].Var = v
		g.addrObjs[v] = obj
		if vn := g.varNode(v); vn >= 0 {
			elem := g.s.FieldNode(obj, ElemField)
			g.s.AddCopy(elem, vn)
			g.s.AddCopy(vn, elem)
		}
	}
	n := g.s.NewNode()
	g.s.AddAddr(n, obj)
	return n
}

// funcValueNode returns a node holding the KFunc object of fn (one per
// function), or a fresh bound-method object when recvN >= 0.
func (g *gen) funcValueNode(fn *types.Func, recvN NodeID) NodeID {
	fn = fn.Origin()
	if recvN >= 0 {
		obj := g.newObject(KFunc, nil, g.curPkg, fn.Type())
		g.objects[obj].Fn = fn
		g.objects[obj].recv = recvN
		n := g.s.NewNode()
		g.s.AddAddr(n, obj)
		return n
	}
	obj, ok := g.funcObjs[fn]
	if !ok {
		obj = g.newObject(KFunc, nil, nil, fn.Type())
		g.objects[obj].Fn = fn
		if di := g.decls[fn]; di != nil {
			g.objects[obj].Site = di.decl.Name
			g.objects[obj].Pkg = di.pkg
		}
		g.funcObjs[fn] = obj
	}
	n := g.s.NewNode()
	g.s.AddAddr(n, obj)
	return n
}

// funcLitNode creates the literal's KFunc object and walks its body
// under its own owner (once).
func (g *gen) funcLitNode(pkg *analysis.Package, lit *ast.FuncLit) NodeID {
	sig, ok := g.litType(pkg, lit)
	if !ok {
		return -1
	}
	obj := g.newObject(KFunc, lit, pkg, sig)
	g.objects[obj].Lit = lit
	n := g.s.NewNode()
	g.s.AddAddr(n, obj)
	g.exprN[lit] = n // pre-memo: recursive literals
	if !g.litDone[lit] {
		g.litDone[lit] = true
		rets := make([]NodeID, sig.Results().Len())
		for i := range rets {
			if pointerLike(sig.Results().At(i).Type()) {
				rets[i] = g.s.NewNode()
			} else {
				rets[i] = -1
			}
		}
		g.litRets[lit] = rets
		g.paramNodes(sig)
		ow := &owner{sig: sig, rets: rets}
		g.walkUnit(pkg, lit.Body, ow)
		g.flushNamedResults(sig, rets)
	}
	return n
}

// compositeNode creates the literal's object and stores its elements.
func (g *gen) compositeNode(pkg *analysis.Package, lit *ast.CompositeLit, t types.Type) NodeID {
	info := pkg.TypesInfo
	if t == nil {
		return -1
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		// &T{...} desugared by the type checker ([]*T{{...}} elements).
		t = p.Elem()
	}
	if !pointerLike(t) {
		return -1
	}
	obj := g.newObject(KAlloc, lit, pkg, t)
	self := g.s.NewNode()
	g.s.AddAddr(self, obj)
	g.exprN[lit] = self

	switch u := t.Underlying().(type) {
	case *types.Struct:
		g.seedAggregate(obj, t, 0, nil)
		for i, elt := range lit.Elts {
			var f *types.Var
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
				if id, ok := kv.Key.(*ast.Ident); ok {
					for j := 0; j < u.NumFields(); j++ {
						if u.Field(j).Name() == id.Name {
							f = u.Field(j)
							break
						}
					}
				}
			} else if i < u.NumFields() {
				f = u.Field(i)
			}
			if f == nil || !pointerLike(f.Type()) {
				continue
			}
			if src := g.nodeOf(pkg, val); src >= 0 {
				g.s.AddStore(self, g.fieldID(f), src)
			}
		}
	case *types.Slice, *types.Array:
		var et types.Type
		switch uu := u.(type) {
		case *types.Slice:
			et = uu.Elem()
		case *types.Array:
			et = uu.Elem()
		}
		g.seedElemCell(obj, et)
		for _, elt := range lit.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if src := g.nodeOf(pkg, val); src >= 0 {
				g.s.AddStore(self, ElemField, src)
			}
		}
	case *types.Map:
		g.seedElemCell(obj, u.Elem())
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if k := g.nodeOf(pkg, kv.Key); k >= 0 {
				g.s.AddStore(self, MapKeyField, k)
			}
			if v := g.nodeOf(pkg, kv.Value); v >= 0 {
				g.s.AddStore(self, ElemField, v)
			}
		}
	}
	_ = info
	return self
}

// callNode evaluates a call expression: builtin, conversion, static
// call, or indirect (pending) call. Returns the first result's node.
func (g *gen) callNode(pkg *analysis.Package, call *ast.CallExpr) NodeID {
	info := pkg.TypesInfo
	if _, done := g.callN[call]; done {
		res := g.callN[call]
		if len(res) > 0 {
			return res[0]
		}
		return -1
	}

	// Conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return g.conversionNode(pkg, call)
	}
	// Builtin?
	if id := baseIdentOf(call.Fun); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			return g.builtinNode(pkg, call, b.Name())
		}
	}

	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	results := g.resultNodes(sig)
	g.callN[call] = results

	args := make([]NodeID, len(call.Args))
	argT := make([]types.Type, len(call.Args))
	for i, a := range call.Args {
		args[i] = g.nodeOf(pkg, a)
		argT[i] = info.TypeOf(a)
	}
	spread := call.Ellipsis.IsValid()

	fn := analysis.Callee(info, call)
	if fn != nil {
		fn = fn.Origin()
		// Interface method call? Resolve from receiver points-to.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if types.IsInterface(s.Recv()) {
					g.pending = append(g.pending, &pendingCall{
						call: call, pkg: pkg, iface: fn,
						funNode: g.nodeOf(pkg, sel.X),
						args:    args, argT: argT, results: results, spread: spread,
					})
					if len(results) > 0 {
						return results[0]
					}
					return -1
				}
				// Concrete method: static bind with receiver.
				g.bindStatic(pkg, call, fn, g.nodeOf(pkg, sel.X), args, argT, results, spread)
				if len(results) > 0 {
					return results[0]
				}
				return -1
			}
		}
		g.bindStatic(pkg, call, fn, -1, args, argT, results, spread)
		if len(results) > 0 {
			return results[0]
		}
		return -1
	}

	// Indirect call through a func value.
	funN := g.nodeOf(pkg, call.Fun)
	if funN >= 0 {
		g.pending = append(g.pending, &pendingCall{
			call: call, pkg: pkg, funNode: funN,
			args: args, argT: argT, results: results, spread: spread,
		})
	} else {
		for _, a := range args {
			g.blurIn(a)
		}
		funSig, _ := pkg.TypesInfo.TypeOf(call.Fun).Underlying().(*types.Signature)
		g.blurResults(results, funSig)
	}
	if len(results) > 0 {
		return results[0]
	}
	return -1
}

func (g *gen) resultNodes(sig *types.Signature) []NodeID {
	if sig == nil {
		return nil
	}
	out := make([]NodeID, sig.Results().Len())
	for i := range out {
		if pointerLike(sig.Results().At(i).Type()) {
			out[i] = g.s.NewNode()
		} else {
			out[i] = -1
		}
	}
	return out
}

// bindStatic binds a statically resolved call: to the declared body
// when it is module code, to the extern blur otherwise.
func (g *gen) bindStatic(pkg *analysis.Package, call *ast.CallExpr, fn *types.Func, recvN NodeID, args []NodeID, argT []types.Type, results []NodeID, spread bool) {
	if g.decls[fn] == nil {
		for _, a := range args {
			g.blurIn(a)
		}
		if recvN >= 0 {
			g.blurIn(recvN)
		}
		g.blurResults(results, fn.Signature())
		return
	}
	sig := fn.Signature()
	if recvN >= 0 && sig.Recv() != nil {
		g.assign(g.varNode(sig.Recv()), recvN, sig.Recv().Type())
	}
	g.bindArgs(sig, g.paramNodes(sig), args, argT, spread)
	rets := g.retNodes(fn)
	for i, res := range results {
		if res >= 0 && i < len(rets) && rets[i] >= 0 {
			g.s.AddCopy(res, rets[i])
		}
	}
}

// conversionNode handles T(x).
func (g *gen) conversionNode(pkg *analysis.Package, call *ast.CallExpr) NodeID {
	info := pkg.TypesInfo
	if len(call.Args) != 1 {
		return -1
	}
	dstT := info.TypeOf(call)
	srcT := info.TypeOf(call.Args[0])
	src := g.nodeOf(pkg, call.Args[0])
	if dstT == nil || !pointerLike(dstT) {
		return -1
	}
	if src >= 0 {
		return src // reference-preserving conversion
	}
	if srcT != nil {
		if b, ok := srcT.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
			// []byte(s) / []rune(s): fresh allocation.
			obj := g.newObject(KAlloc, call, pkg, dstT)
			n := g.s.NewNode()
			g.s.AddAddr(n, obj)
			return n
		}
	}
	return -1
}

// builtinNode handles the builtins with points-to effects.
func (g *gen) builtinNode(pkg *analysis.Package, call *ast.CallExpr, name string) NodeID {
	info := pkg.TypesInfo
	switch name {
	case "make":
		t := info.TypeOf(call)
		obj := g.newObject(KAlloc, call, pkg, t)
		switch u := t.Underlying().(type) {
		case *types.Slice:
			g.seedElemCell(obj, u.Elem())
		case *types.Map:
			g.seedElemCell(obj, u.Elem())
		case *types.Chan:
			g.seedElemCell(obj, u.Elem())
		}
		n := g.s.NewNode()
		g.s.AddAddr(n, obj)
		return n
	case "new":
		t := info.TypeOf(call) // *T
		pt, _ := t.Underlying().(*types.Pointer)
		if pt == nil {
			return -1
		}
		et := pt.Elem()
		if !pointerLike(et) && !isAggregate(et) {
			// new(int) etc: still a cell so *p writes have a target.
			obj := g.newObject(KAlloc, call, pkg, et)
			n := g.s.NewNode()
			g.s.AddAddr(n, obj)
			return n
		}
		obj := g.newObject(KAlloc, call, pkg, et)
		if isAggregate(et) {
			g.seedAggregate(obj, et, 0, nil)
		}
		n := g.s.NewNode()
		g.s.AddAddr(n, obj)
		return n
	case "append":
		if len(call.Args) == 0 {
			return -1
		}
		base := g.nodeOf(pkg, call.Args[0])
		t := info.TypeOf(call.Args[0])
		res := g.s.NewNode()
		if base >= 0 {
			g.s.AddCopy(res, base)
		}
		obj := g.newObject(KAlloc, call, pkg, t) // the possible realloc
		if t != nil {
			if st, ok := t.Underlying().(*types.Slice); ok {
				g.seedElemCell(obj, st.Elem())
			}
		}
		g.s.AddAddr(res, obj)
		if call.Ellipsis.IsValid() && len(call.Args) == 2 {
			if src := g.nodeOf(pkg, call.Args[1]); src >= 0 {
				tmp := g.s.NewNode()
				g.s.AddLoad(tmp, src, ElemField)
				g.s.AddStore(res, ElemField, tmp)
			}
			return res
		}
		for _, a := range call.Args[1:] {
			if src := g.nodeOf(pkg, a); src >= 0 {
				g.s.AddStore(res, ElemField, src)
			}
		}
		return res
	case "copy":
		if len(call.Args) == 2 {
			dst := g.nodeOf(pkg, call.Args[0])
			src := g.nodeOf(pkg, call.Args[1])
			if dst >= 0 && src >= 0 {
				tmp := g.s.NewNode()
				g.s.AddLoad(tmp, src, ElemField)
				g.s.AddStore(dst, ElemField, tmp)
			}
		}
		return -1
	case "recover":
		n := g.s.NewNode()
		g.blurOut(n, nil)
		return n
	}
	return -1
}
