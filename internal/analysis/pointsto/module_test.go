package pointsto

import (
	"go/types"
	"testing"
	"time"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// TestRealModule runs the analysis over the whole graphbig module: it
// must terminate quickly (the CI vet budget depends on it), and the
// query the immutview analyzer is built on — the set of objects
// reachable from a published View — must be non-trivial.
func TestRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the full module")
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("github.com/graphbig/graphbig-go/...")
	if err != nil {
		t.Fatal(err)
	}
	m := analysis.NewModule(pkgs)
	start := time.Now()
	r := Of(m)
	elapsed := time.Since(start)
	st := r.SolverStats()
	t.Logf("analyze: %v — nodes=%d objects=%d copyEdges=%d iters=%d collapsed=%d",
		elapsed, st.Nodes, st.Objects, st.CopyEdges, st.Iterations, st.Collapsed)
	if elapsed > 30*time.Second {
		t.Errorf("points-to analysis took %v on the module; solver regression", elapsed)
	}

	// The published-view root: ViewWith's return must point somewhere.
	var viewWith *types.Func
	for _, pkg := range pkgs {
		if !analysis.HasPathSuffix(pkg.PkgPath, "internal/property") {
			continue
		}
		for _, name := range pkg.Types.Scope().Names() {
			if fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func); ok && name == "ViewWith" {
				viewWith = fn
			}
		}
		// ViewWith is a method on *Graph.
		if viewWith == nil {
			if g, ok := pkg.Types.Scope().Lookup("Graph").(*types.TypeName); ok {
				named := g.Type().(*types.Named)
				for i := 0; i < named.NumMethods(); i++ {
					if named.Method(i).Name() == "ViewWith" {
						viewWith = named.Method(i)
					}
				}
			}
		}
	}
	if viewWith == nil {
		t.Fatal("ViewWith not found in internal/property")
	}
	rets := r.ReturnObjects(viewWith, 0)
	if len(rets) == 0 {
		t.Fatal("ViewWith's return has an empty points-to set")
	}
	frozen := r.Reachable(rets, func(o *Object) bool {
		return o.Type != nil && analysis.NamedIn(o.Type, "Vertex", "internal/property")
	})
	if len(frozen) < len(rets) || len(frozen) < 5 {
		t.Errorf("published-view closure has %d objects; expected the View and its CSR arrays", len(frozen))
	}
}
