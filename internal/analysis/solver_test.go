package analysis

import (
	"go/ast"
	"go/token"
	"testing"
)

// stringSet facts for the solver tests.
type stringSet map[string]bool

func setEqual(a, b stringSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func intersect(a, b stringSet) stringSet {
	if a == nil {
		return b // nil is Top for intersection lattices
	}
	if b == nil {
		return a
	}
	out := stringSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func union(a, b stringSet) stringSet {
	out := stringSet{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// assignedIn collects identifiers assigned (:=, =) by the block's nodes.
func assignedIn(b *Block) []string {
	var names []string
	for _, n := range b.Nodes {
		if asg, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range asg.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					names = append(names, id.Name)
				}
			}
		}
	}
	return names
}

// TestSolveForwardDefiniteAssignment: intersection meet over a diamond —
// a variable assigned on both branches is definitely assigned at the
// join; one assigned on a single branch is not. A loop-body assignment
// must not leak to the loop exit (zero-iteration path).
func TestSolveForwardDefiniteAssignment(t *testing.T) {
	c, _, _ := buildTestCFG(t, `
func f(cond bool, n int) {
	var both, one, looped, pre any
	_ = pre
	if cond {
		both = 1
		one = 1
	} else {
		both = 2
	}
	sink(both, one)
	pre = 0
	for i := 0; i < n; i++ {
		looped = i
	}
	sink(looped)
}`)
	// nil stringSet is the Top of the intersection lattice (the set of all
	// names); the boundary starts empty (nothing assigned at entry).
	lat := Lattice[stringSet]{
		Boundary: stringSet{},
		Top:      func() stringSet { return nil },
		Meet:     intersect,
		Equal: func(a, b stringSet) bool {
			if a == nil || b == nil {
				return a == nil && b == nil
			}
			return setEqual(a, b)
		},
		Transfer: func(b *Block, in stringSet) stringSet {
			names := assignedIn(b)
			if len(names) == 0 {
				return in
			}
			out := union(in, nil)
			for _, n := range names {
				out[n] = true
			}
			return out
		},
	}
	res := Solve(c, Forward, lat)
	atExit := res.In[c.Exit]
	if atExit == nil {
		t.Fatal("exit fact is Top; solver never propagated")
	}
	if !atExit["both"] {
		t.Error("`both` assigned on both branches but not definitely assigned at exit")
	}
	if atExit["one"] {
		t.Error("`one` assigned on a single branch reported definitely assigned")
	}
	if !atExit["pre"] {
		t.Error("straight-line assignment to `pre` lost")
	}
	// The loop exit joins the zero-iteration path, so `looped` must not be
	// definite there.
	if atExit["looped"] {
		t.Error("loop-body assignment to `looped` leaked past the zero-iteration path")
	}
}

// TestSolveBackwardLiveness: union meet backwards — a parameter read
// after the loop is live at entry; a variable only ever written is not.
func TestSolveBackwardLiveness(t *testing.T) {
	c, _, _ := buildTestCFG(t, `
func f(n int) int {
	dead := 0
	dead = 1
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`)
	uses := func(b *Block) (used, defined stringSet) {
		used, defined = stringSet{}, stringSet{}
		for _, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
							defined[id.Name] = true
						}
					}
				}
				for _, rhs := range n.Rhs {
					ast.Inspect(rhs, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							used[id.Name] = true
						}
						return true
					})
				}
			default:
				ast.Inspect(n, func(m ast.Node) bool {
					if _, ok := m.(*ast.AssignStmt); ok {
						return false
					}
					if id, ok := m.(*ast.Ident); ok {
						used[id.Name] = true
					}
					return true
				})
			}
		}
		return used, defined
	}
	lat := Lattice[stringSet]{
		Boundary: stringSet{},
		Top:      func() stringSet { return stringSet{} },
		Meet:     union,
		Equal:    setEqual,
		Transfer: func(b *Block, in stringSet) stringSet {
			used, defined := uses(b)
			out := union(in, nil)
			for k := range defined {
				delete(out, k)
			}
			for k := range used {
				out[k] = true
			}
			return out
		},
	}
	res := Solve(c, Backward, lat)
	atEntry := res.Out[c.Entry]
	if !atEntry["n"] {
		t.Error("parameter n read in the loop condition is not live at entry")
	}
	if atEntry["dead"] {
		t.Error("write-only variable `dead` reported live at entry")
	}
	// s is defined before the loop and used after; at the loop head it
	// must be live (read by the back edge and the return).
	head := hasKind(c, "for.head")
	if head == nil {
		t.Fatal("no loop head")
	}
	if !res.In[head]["s"] {
		t.Error("`s` not live at the loop head despite the return after the loop")
	}
}
