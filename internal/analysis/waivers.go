package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Waiver is one //vet:<analyzer> suppression directive. A directive
// waives findings of its analyzer on its own line or the line below
// (so it can sit above the statement it excuses). The justification —
// everything after the analyzer name — is mandatory; analyzers report
// bare directives instead of honoring them.
type Waiver struct {
	Analyzer      string
	Pos           token.Pos
	File          string
	Line          int
	Justification string

	used bool
}

// MarkUsed records that the waiver suppressed a finding this run. The
// -waivers audit reports directives that no analyzer marked: they are
// stale and must be deleted, not left to rot.
func (w *Waiver) MarkUsed() { w.used = true }

// Used reports whether the waiver suppressed a finding this run.
func (w *Waiver) Used() bool { return w.used }

// WaiverSet indexes one analyzer's directives by file and line.
type WaiverSet struct {
	byKey map[string]*Waiver
	fset  *token.FileSet
}

// At returns the directive on pos's line shifted by lineDelta, if any.
func (ws *WaiverSet) At(pos token.Pos, lineDelta int) *Waiver {
	if ws == nil || ws.fset == nil {
		return nil
	}
	p := ws.fset.Position(pos)
	return ws.byKey[fmt.Sprintf("%s:%d", p.Filename, p.Line+lineDelta)]
}

// Covering returns the directive that waives a finding at pos: on the
// same line or the line above.
func (ws *WaiverSet) Covering(pos token.Pos) *Waiver {
	if w := ws.At(pos, 0); w != nil {
		return w
	}
	return ws.At(pos, -1)
}

// All returns the set's directives sorted by file then line.
func (ws *WaiverSet) All() []*Waiver {
	if ws == nil {
		return nil
	}
	out := make([]*Waiver, 0, len(ws.byKey))
	for _, w := range ws.byKey {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// parseWaiverComment splits a comment's text into the directive's
// analyzer name and justification. ok is false for non-directive
// comments. Accepts //vet:name and /*vet:name*/ forms.
func parseWaiverComment(text string) (name, justification string, ok bool) {
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	const prefix = "vet:"
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := text[len(prefix):]
	end := 0
	for end < len(rest) {
		c := rest[end]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			break
		}
		end++
	}
	if end == 0 {
		return "", "", false
	}
	return rest[:end], strings.TrimSpace(rest[end:]), true
}

// WaiverDirectives scans every comment of pkgs and returns all vet:
// directives, any analyzer name, sorted by file then line. The -waivers
// inventory starts here; analyzers use Module.Waivers for the cached
// per-analyzer view whose used-marks the audit observes.
func WaiverDirectives(pkgs []*Package) []*Waiver {
	var out []*Waiver
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					name, just, ok := parseWaiverComment(cm.Text)
					if !ok {
						continue
					}
					p := pkg.Fset.Position(cm.Pos())
					out = append(out, &Waiver{
						Analyzer:      name,
						Pos:           cm.Pos(),
						File:          p.Filename,
						Line:          p.Line,
						Justification: just,
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// collectWaiverSet builds the per-analyzer index over pkgs.
func collectWaiverSet(pkgs []*Package, analyzer string) *WaiverSet {
	ws := &WaiverSet{byKey: map[string]*Waiver{}}
	if len(pkgs) > 0 {
		ws.fset = pkgs[0].Fset
	}
	for _, w := range WaiverDirectives(pkgs) {
		if w.Analyzer != analyzer {
			continue
		}
		ws.byKey[fmt.Sprintf("%s:%d", w.File, w.Line)] = w
	}
	return ws
}
