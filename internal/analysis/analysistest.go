package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest loads each fixture package from <cwd>/testdata/src/<pkgpath>,
// applies the analyzer, and compares its findings against `// want "re"`
// comments, the x/tools analysistest convention: every line carrying a
// want comment must produce a diagnostic matching the quoted regular
// expression, and every diagnostic must be claimed by a want comment.
// Several quoted regexes may follow one want for lines with multiple
// findings.
func RunTest(t *testing.T, a *Analyzer, pkgpaths ...string) {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.TestdataRoot, err = filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pkgpath := range pkgpaths {
		pkg, err := l.LoadFixture(pkgpath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgpath, err)
		}
		diags, err := RunAnalyzers(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
		}
		checkWants(t, pkg, diags)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	// file:line -> pending expectations.
	wants := map[string][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
				}
				if len(res) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], res...)
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

// parseWant extracts the quoted regexes from a `// want "re" "re2"` comment
// (nil if the comment is not a want comment).
func parseWant(comment string) ([]*want, error) {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(comment), "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var res []*want
	for rest != "" {
		if rest[0] != '"' {
			return nil, fmt.Errorf("want comment: expected quoted regexp at %q", rest)
		}
		end := 1
		for end < len(rest) {
			if rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			end++
		}
		if end >= len(rest) {
			return nil, fmt.Errorf("want comment: unterminated string in %q", rest)
		}
		lit, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("want comment: %v", err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp: %v", err)
		}
		res = append(res, &want{re: re})
		rest = strings.TrimSpace(rest[end+1:])
	}
	return res, nil
}
