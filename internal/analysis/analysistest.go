package analysis

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// -ranges.debug mirrors `graphbig-vet -debug=ranges` inside analyzer
// tests: fixture findings carry the inferred intervals, which is how a
// failing `// want` is diagnosed. Off by default — the wants match the
// production messages.
var debugRangesFlag = flag.Bool("ranges.debug", false, "append inferred value ranges to range-analyzer findings in RunTest")

// RunTest loads each fixture package from <cwd>/testdata/src/<pkgpath>,
// applies the analyzer, and compares its findings against `// want "re"`
// comments, the x/tools analysistest convention: every line carrying a
// want comment must produce a diagnostic matching the quoted regular
// expression, and every diagnostic must be claimed by a want comment.
// Several quoted regexes may follow one want for lines with multiple
// findings.
//
// Per-package analyzers (Run set) are applied to each fixture package in
// turn. Module analyzers (RunModule set) are applied once to a Module
// holding every loaded package — the named fixtures, fixture siblings
// pulled in through imports, and any real module packages the fixtures
// import — and the want comments of every fixture package (siblings
// included) are checked, so a fixture can demonstrate caller-side
// reporting of a violation that lives only in an imported helper.
func RunTest(t *testing.T, a *Analyzer, pkgpaths ...string) {
	t.Helper()
	if *debugRangesFlag {
		SetDebug(true)
		defer SetDebug(false)
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.TestdataRoot, err = filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	if a.RunModule != nil {
		runModuleTest(t, l, a, pkgpaths)
		return
	}
	for _, pkgpath := range pkgpaths {
		pkg, err := l.LoadFixture(pkgpath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgpath, err)
		}
		diags, err := RunAnalyzers(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
		}
		checkWants(t, pkg.Fset, pkg.Files, diags)
	}
}

func runModuleTest(t *testing.T, l *Loader, a *Analyzer, pkgpaths []string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		if _, err := l.LoadFixture(pkgpath); err != nil {
			t.Fatalf("loading fixture %s: %v", pkgpath, err)
		}
	}
	// Every package with syntax participates in the module (the call
	// graph needs the real module callees too); want comments are checked
	// only in fixture files.
	var pkgs []*Package
	var fixtureFiles []*ast.File
	var fset *token.FileSet
	for _, pkg := range l.loaded {
		pkgs = append(pkgs, pkg)
		fset = pkg.Fset
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.FileStart).Filename
			if strings.HasPrefix(name, l.TestdataRoot+string(filepath.Separator)) {
				fixtureFiles = append(fixtureFiles, f)
			}
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	diags, err := RunModuleAnalyzers(NewModule(pkgs), []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, fixtureFiles, diags)
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	// file:line -> pending expectations.
	wants := map[string][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				res, err := parseWant(c.Text)
				if err != nil {
					t.Fatalf("%s: %v", fset.Position(c.Pos()), err)
				}
				if len(res) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				wants[key] = append(wants[key], res...)
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.re)
			}
		}
	}
}

// parseWant extracts the quoted regexes from a `// want "re" "re2"` comment
// (nil if the comment is not a want comment).
func parseWant(comment string) ([]*want, error) {
	text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(comment), "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var res []*want
	for rest != "" {
		quote := rest[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want comment: expected quoted regexp at %q", rest)
		}
		end := 1
		for end < len(rest) {
			if quote == '"' && rest[end] == '\\' {
				end += 2
				continue
			}
			if rest[end] == quote {
				break
			}
			end++
		}
		if end >= len(rest) {
			return nil, fmt.Errorf("want comment: unterminated string in %q", rest)
		}
		lit, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("want comment: %v", err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("want comment: bad regexp: %v", err)
		}
		res = append(res, &want{re: re})
		rest = strings.TrimSpace(rest[end+1:])
	}
	return res, nil
}
