package analysis

import (
	"math"
	"testing"
)

func iv(lo, hi int64) Interval {
	return Interval{Lo: ConstBound(lo), Hi: ConstBound(hi)}
}

func TestIntervalJoinMeet(t *testing.T) {
	tests := []struct {
		name     string
		a, b     Interval
		joinWant string
		meetWant string
	}{
		{"overlap", iv(0, 5), iv(3, 9), "[0, 9]", "[3, 5]"},
		{"nested", iv(0, 10), iv(2, 4), "[0, 10]", "[2, 4]"},
		{"disjoint", iv(0, 1), iv(5, 6), "[0, 6]", "[5, 1]"},
		{"with full", iv(0, 5), Full(), "[-inf, +inf]", "[0, 5]"},
		{"points", Point(3), Point(3), "[3, 3]", "[3, 3]"},
	}
	for _, tc := range tests {
		if got := tc.a.Join(tc.b).String(); got != tc.joinWant {
			t.Errorf("%s: join = %s, want %s", tc.name, got, tc.joinWant)
		}
		if got := tc.b.Join(tc.a).String(); got != tc.joinWant {
			t.Errorf("%s: join (swapped) = %s, want %s", tc.name, got, tc.joinWant)
		}
		if got := tc.a.Meet(tc.b).String(); got != tc.meetWant {
			t.Errorf("%s: meet = %s, want %s", tc.name, got, tc.meetWant)
		}
	}
}

func TestIntervalWiden(t *testing.T) {
	// Stable endpoints survive widening; changed endpoints jump to
	// infinity so chains of widenings have length <= 2.
	tests := []struct {
		old, merged Interval
		want        string
	}{
		{iv(0, 5), iv(0, 7), "[0, +inf]"},
		{iv(0, 5), iv(-1, 5), "[-inf, 5]"},
		{iv(0, 5), iv(-1, 7), "[-inf, +inf]"},
		{iv(0, 5), iv(0, 5), "[0, 5]"},
	}
	for _, tc := range tests {
		if got := tc.old.Widen(tc.merged).String(); got != tc.want {
			t.Errorf("widen(%s, %s) = %s, want %s", tc.old, tc.merged, got, tc.want)
		}
	}
}

func TestIntervalArith(t *testing.T) {
	tests := []struct {
		name string
		got  Interval
		want string
	}{
		{"add", iv(1, 2).Add(iv(10, 20)), "[11, 22]"},
		{"add overflow saturates", iv(math.MaxInt64-1, math.MaxInt64).Add(iv(2, 2)), "[+inf, +inf]"},
		{"sub", iv(10, 20).Sub(iv(1, 2)), "[8, 19]"},
		{"neg", iv(-3, 7).Neg(), "[-7, 3]"},
		{"mul mixed signs", iv(-2, 3).Mul(iv(-5, 4)), "[-15, 12]"},
		{"div by positive", iv(0, 100).Div(iv(2, 5)), "[0, 50]"},
		{"div full divisor", iv(0, 100).Div(Full()), "[-inf, +inf]"},
		{"rem positive divisor", Full().Rem(iv(1, 8)), "[-7, 7]"},
		{"rem nonneg dividend", iv(0, 100).Rem(iv(1, 8)), "[0, 7]"},
		{"rem zero divisor", Full().Rem(iv(0, 8)), "[-inf, +inf]"},
		{"shl", iv(0, 3).Shl(Point(2)), "[0, 12]"},
		{"shl overflow", iv(0, math.MaxInt64).Shl(Point(1)), "[-inf, +inf]"},
		{"shr", iv(0, 64).Shr(Point(3)), "[0, 64]"},
		{"and nonneg", iv(0, 100).And(iv(0, 15)), "[0, 15]"},
		{"or nonneg", iv(0, 4).OrXor(iv(0, 3)), "[0, +inf]"},
	}
	for _, tc := range tests {
		if got := tc.got.String(); got != tc.want {
			t.Errorf("%s = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestSymbolicBounds(t *testing.T) {
	o := symObjForTest(t, "vs")
	lenB := SymBound(o, 0, true)     // len(vs)
	lenM1 := SymBound(o, -1, true)   // len(vs)-1
	symIv := Interval{Lo: ConstBound(0), Hi: lenM1}

	if !leqBound(lenM1, lenB) {
		t.Error("len(vs)-1 <= len(vs) should hold")
	}
	if leqBound(lenB, lenM1) {
		t.Error("len(vs) <= len(vs)-1 should not hold")
	}
	// A constant is below a length bound only when it is <= the offset
	// (len >= 0 is the only length fact the comparison may assume).
	if !leqBound(ConstBound(0), lenB) || !leqBound(ConstBound(-2), lenM1) {
		t.Error("constants below len offsets should compare")
	}
	if leqBound(ConstBound(0), lenM1) {
		t.Error("0 <= len(vs)-1 must not hold for possibly-empty vs")
	}
	// Same-symbol subtraction cancels: (len(vs)-1) - (len(vs)-1) = 0.
	if got := symIv.Sub(Interval{Lo: lenM1, Hi: lenM1}).String(); got != "[-inf, 0]" {
		t.Errorf("symbolic sub = %s, want [-inf, 0]", got)
	}
	if got := symIv.String(); got != "[0, len(vs)-1]" {
		t.Errorf("String = %s", got)
	}
	// Widening keeps unchanged symbolic endpoints.
	w := symIv.Widen(Interval{Lo: ConstBound(-1), Hi: lenM1})
	if got := w.String(); got != "[-inf, len(vs)-1]" {
		t.Errorf("widen kept wrong endpoints: %s", got)
	}
}

func TestAddKSaturation(t *testing.T) {
	if b := ConstBound(math.MaxInt64).AddK(1); b.Inf != +1 {
		t.Errorf("MaxInt64+1 should saturate to +inf, got %s", b)
	}
	if b := ConstBound(math.MinInt64).AddK(-1); b.Inf != -1 {
		t.Errorf("MinInt64-1 should saturate to -inf, got %s", b)
	}
	if b := NegInf().AddK(5); b.Inf != -1 {
		t.Errorf("-inf+5 should stay -inf, got %s", b)
	}
}
