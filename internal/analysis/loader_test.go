package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// TestLoadModulePackage type-checks a real module package from source and
// verifies the Pass sees resolved type information.
func TestLoadModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(./internal/stats) = %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !strings.HasSuffix(pkg.PkgPath, "internal/stats") {
		t.Errorf("PkgPath = %q, want suffix internal/stats", pkg.PkgPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Len() == 0 {
		t.Fatal("package has no type information")
	}
	if pkg.TypesInfo == nil || len(pkg.TypesInfo.Defs) == 0 {
		t.Fatal("package has no defs recorded")
	}
	if len(pkg.Files) == 0 {
		t.Fatal("package has no parsed files")
	}
}

// TestLoadDepsClosure verifies ./... loads every module package with its
// imports resolved in dependency order.
func TestLoadDepsClosure(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load(./...) = %d packages, want at least 20", len(pkgs))
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		if seen[p.PkgPath] {
			t.Errorf("package %s listed twice", p.PkgPath)
		}
		seen[p.PkgPath] = true
	}
	for _, want := range []string{"internal/engine", "internal/workloads", "internal/property"} {
		found := false
		for _, p := range pkgs {
			if strings.HasSuffix(p.PkgPath, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Load(./...) missing %s", want)
		}
	}
}

// TestRunAnalyzersSortsDiagnostics verifies diagnostics come back in
// positional order regardless of analyzer-internal map iteration.
func TestRunAnalyzersSortsDiagnostics(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	reportAll := &Analyzer{
		Name: "reportall",
		Doc:  "report every function declaration (test helper)",
		Run: func(pass *Pass) error {
			// Walk files in reverse to prove Report order is normalized.
			for i := len(pass.Files) - 1; i >= 0; i-- {
				ast.Inspect(pass.Files[i], func(n ast.Node) bool {
					if fd, ok := n.(*ast.FuncDecl); ok {
						pass.Report(fd.Pos(), "func %s", fd.Name.Name)
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := RunAnalyzers(pkgs[0], []*Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics from reportall")
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos < diags[i-1].Pos {
			t.Fatalf("diagnostics out of order at %d", i)
		}
	}
}
