package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestLoadModulePackage type-checks a real module package from source and
// verifies the Pass sees resolved type information.
func TestLoadModulePackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(./internal/stats) = %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !strings.HasSuffix(pkg.PkgPath, "internal/stats") {
		t.Errorf("PkgPath = %q, want suffix internal/stats", pkg.PkgPath)
	}
	if pkg.Types == nil || pkg.Types.Scope().Len() == 0 {
		t.Fatal("package has no type information")
	}
	if pkg.TypesInfo == nil || len(pkg.TypesInfo.Defs) == 0 {
		t.Fatal("package has no defs recorded")
	}
	if len(pkg.Files) == 0 {
		t.Fatal("package has no parsed files")
	}
}

// TestLoadDepsClosure verifies ./... loads every module package with its
// imports resolved in dependency order.
func TestLoadDepsClosure(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load(./...) = %d packages, want at least 20", len(pkgs))
	}
	seen := map[string]bool{}
	for _, p := range pkgs {
		if seen[p.PkgPath] {
			t.Errorf("package %s listed twice", p.PkgPath)
		}
		seen[p.PkgPath] = true
	}
	for _, want := range []string{"internal/engine", "internal/workloads", "internal/property"} {
		found := false
		for _, p := range pkgs {
			if strings.HasSuffix(p.PkgPath, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Load(./...) missing %s", want)
		}
	}
}

// TestStdCacheReused: a second loader must serve the entire std closure
// from the process-wide cache — zero new type-check invocations.
func TestStdCacheReused(t *testing.T) {
	warm, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Load("./internal/stats"); err != nil {
		t.Fatal(err)
	}
	checked := StdTypeChecks()
	if checked == 0 {
		t.Fatal("warm load type-checked no std packages; cache accounting broken")
	}
	cold, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Load("./internal/stats"); err != nil {
		t.Fatal(err)
	}
	if got := StdTypeChecks(); got != checked {
		t.Fatalf("second loader re-checked %d std packages; want full reuse", got-checked)
	}
}

// BenchmarkLoaderWarm measures a full loader construction + package load
// with the std cache warm — the per-RunAnalyzers cost the cache removes.
// Compare against the first (cold) load printed by the benchmark's own
// warmup to see the speedup.
func BenchmarkLoaderWarm(b *testing.B) {
	l, err := NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := l.Load("./internal/stats"); err != nil {
		b.Fatal(err) // warms the std cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Load("./internal/stats"); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFixtureDiscoveryHonorsBuildTags: files gated off by build tags and
// "_"/"." prefixed files must not be parsed — the gated file here would
// fail type-checking if included.
func TestFixtureDiscoveryHonorsBuildTags(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "example.com", "tagged")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good.go", "package tagged\n\nfunc Good() int { return 1 }\n")
	write("gated.go", "//go:build fixturedisabledtag\n\npackage tagged\n\nfunc Bad() { undeclaredIdentifier() }\n")
	write("legacy_gated.go", "// +build fixturedisabledtag\n\npackage tagged\n\nfunc AlsoBad() { undeclaredIdentifier() }\n")
	write("_vendored.go", "package tagged\n\nfunc Vendored() { undeclaredIdentifier() }\n")
	write("platform.go", "//go:build "+runtime.GOOS+"\n\npackage tagged\n\nfunc Platform() int { return 2 }\n")

	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.TestdataRoot = root
	pkg, err := l.LoadFixture("example.com/tagged")
	if err != nil {
		t.Fatalf("LoadFixture with gated files: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (good.go and the matching platform file)", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("Good") == nil || pkg.Types.Scope().Lookup("Platform") == nil {
		t.Error("expected declarations missing from the fixture package")
	}
	if pkg.Types.Scope().Lookup("Bad") != nil {
		t.Error("build-tag-gated file was loaded")
	}
}

// TestRunAnalyzersSortsDiagnostics verifies diagnostics come back in
// positional order regardless of analyzer-internal map iteration.
func TestRunAnalyzersSortsDiagnostics(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	reportAll := &Analyzer{
		Name: "reportall",
		Doc:  "report every function declaration (test helper)",
		Run: func(pass *Pass) error {
			// Walk files in reverse to prove Report order is normalized.
			for i := len(pass.Files) - 1; i >= 0; i-- {
				ast.Inspect(pass.Files[i], func(n ast.Node) bool {
					if fd, ok := n.(*ast.FuncDecl); ok {
						pass.Report(fd.Pos(), "func %s", fd.Name.Name)
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := RunAnalyzers(pkgs[0], []*Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics from reportall")
	}
	for i := 1; i < len(diags); i++ {
		if diags[i].Pos < diags[i-1].Pos {
			t.Fatalf("diagnostics out of order at %d", i)
		}
	}
}
