package analysis

import (
	"fmt"
	"io"
	"strings"
)

// Vet loads the packages matching patterns (module packages only; the
// standard-library closure is type-checked but never analyzed), applies
// every analyzer, and writes one "file:line:col: message [analyzer]" line
// per finding. It returns the number of findings. Test files are not
// analyzed: the invariants protect shipped simulation and engine code.
func Vet(w io.Writer, analyzers []*Analyzer, patterns ...string) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := NewLoader(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return 0, err
	}
	count := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return count, err
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			count++
		}
	}
	return count, nil
}

// Doc renders a one-line-per-analyzer summary for -help output.
func Doc(analyzers []*Analyzer) string {
	var b strings.Builder
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(&b, "  %-14s %s\n", a.Name, doc)
	}
	return b.String()
}
