package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic with its position resolved, the
// serialization unit of graphbig-vet's text and JSON output modes.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// AnalyzerTiming is one analyzer's wall-clock accumulated across every
// package (per-package analyzers) or the whole module (module
// analyzers), in suite order — what the CI time-budget step records.
type AnalyzerTiming struct {
	Analyzer string  `json:"analyzer"`
	Seconds  float64 `json:"seconds"`
}

// WaiverRecord is one //vet:* directive in the -waivers inventory.
// Stale means no analyzer in the run marked it as suppressing a finding
// (the code it excused got fixed, or the analyzer name is a typo no
// analyzer answers to — Unknown distinguishes the latter). Stale and
// unjustified directives fail the CI waiver audit.
type WaiverRecord struct {
	Analyzer      string `json:"analyzer"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Justification string `json:"justification,omitempty"`
	Used          bool   `json:"used"`
	Stale         bool   `json:"stale"`
	Unknown       bool   `json:"unknown,omitempty"`
}

// VetResult bundles one run of the suite: the findings, per-analyzer
// wall-clock, and the waiver inventory with post-run used marks.
type VetResult struct {
	Findings []Finding        `json:"findings"`
	Timings  []AnalyzerTiming `json:"timings"`
	Waivers  []WaiverRecord   `json:"waivers"`
}

// VetAll loads the packages matching patterns (module packages only;
// the standard-library closure is type-checked but never analyzed) and
// applies the suite: per-package analyzers to each package, module
// analyzers once to the whole set, each analyzer timed individually.
// Findings come back sorted by file, line, column. Test files are not
// analyzed: the invariants protect shipped simulation and engine code.
// The waiver inventory is collected after the analyzers run, so its
// used marks reflect this run; staleness is only judged for directives
// whose analyzer was in the run set.
func VetAll(analyzers []*Analyzer, patterns ...string) (*VetResult, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := NewLoader(".")
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var finds []Finding
	elapsed := make([]time.Duration, len(analyzers))
	for _, pkg := range pkgs {
		for i, a := range analyzers {
			start := time.Now()
			diags, err := RunAnalyzers(pkg, []*Analyzer{a})
			elapsed[i] += time.Since(start)
			if err != nil {
				return nil, err
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				finds = append(finds, Finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message})
			}
		}
	}
	m := NewModule(pkgs)
	for i, a := range analyzers {
		start := time.Now()
		mdiags, err := RunModuleAnalyzers(m, []*Analyzer{a})
		elapsed[i] += time.Since(start)
		if err != nil {
			return nil, err
		}
		for _, d := range mdiags {
			pos := m.Fset.Position(d.Pos)
			finds = append(finds, Finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message})
		}
	}
	SortFindings(finds)
	res := &VetResult{Findings: finds}
	for i, a := range analyzers {
		res.Timings = append(res.Timings, AnalyzerTiming{Analyzer: a.Name, Seconds: elapsed[i].Seconds()})
	}
	res.Waivers = auditWaivers(m, analyzers)
	return res, nil
}

// auditWaivers builds the post-run waiver inventory: the cached
// per-analyzer sets carry the used marks the analyzers left behind, and
// directives naming no analyzer in the run set surface as unknown (a
// typo'd name suppresses nothing and must not linger).
func auditWaivers(m *Module, analyzers []*Analyzer) []WaiverRecord {
	known := map[string]bool{}
	var recs []WaiverRecord
	for _, a := range analyzers {
		known[a.Name] = true
		for _, w := range m.Waivers(a.Name).All() {
			recs = append(recs, WaiverRecord{
				Analyzer:      w.Analyzer,
				File:          w.File,
				Line:          w.Line,
				Justification: w.Justification,
				Used:          w.Used(),
				Stale:         !w.Used(),
			})
		}
	}
	for _, w := range WaiverDirectives(m.Pkgs) {
		if known[w.Analyzer] {
			continue
		}
		recs = append(recs, WaiverRecord{
			Analyzer:      w.Analyzer,
			File:          w.File,
			Line:          w.Line,
			Justification: w.Justification,
			Stale:         true,
			Unknown:       true,
		})
	}
	SortWaiverRecords(recs)
	return recs
}

// SortFindings orders findings deterministically by (file, line, col,
// analyzer, message) — the contract the -json output and CI artifact
// diffs rely on: two runs over the same tree produce byte-identical
// output regardless of analyzer scheduling.
func SortFindings(finds []Finding) {
	sort.Slice(finds, func(i, j int) bool {
		a, b := finds[i], finds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// SortWaiverRecords orders the -waivers inventory deterministically by
// (file, line, analyzer), the same stability contract as SortFindings.
func SortWaiverRecords(recs []WaiverRecord) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].File != recs[j].File {
			return recs[i].File < recs[j].File
		}
		if recs[i].Line != recs[j].Line {
			return recs[i].Line < recs[j].Line
		}
		return recs[i].Analyzer < recs[j].Analyzer
	})
}

// VetFindings runs VetAll and returns just the findings.
func VetFindings(analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	res, err := VetAll(analyzers, patterns...)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// Vet runs VetFindings and writes one "file:line:col: message [analyzer]"
// line per finding — the format the CI problem matcher parses. It returns
// the number of findings.
func Vet(w io.Writer, analyzers []*Analyzer, patterns ...string) (int, error) {
	finds, err := VetFindings(analyzers, patterns...)
	if err != nil {
		return 0, err
	}
	for _, f := range finds {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	return len(finds), nil
}

// VetJSON runs VetFindings and writes the findings as a JSON array (empty
// array, not null, for a clean tree — consumers can always range over
// it). It returns the number of findings.
func VetJSON(w io.Writer, analyzers []*Analyzer, patterns ...string) (int, error) {
	finds, err := VetFindings(analyzers, patterns...)
	if err != nil {
		return 0, err
	}
	if finds == nil {
		finds = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(finds); err != nil {
		return 0, err
	}
	return len(finds), nil
}

// Doc renders a one-line-per-analyzer summary for -help output.
func Doc(analyzers []*Analyzer) string {
	var b strings.Builder
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(&b, "  %-14s %s\n", a.Name, doc)
	}
	return b.String()
}
