package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Finding is one diagnostic with its position resolved, the
// serialization unit of graphbig-vet's text and JSON output modes.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// VetFindings loads the packages matching patterns (module packages only;
// the standard-library closure is type-checked but never analyzed) and
// applies the full suite: per-package analyzers to each package, module
// analyzers once to the whole set. Findings come back sorted by file,
// line, column. Test files are not analyzed: the invariants protect
// shipped simulation and engine code.
func VetFindings(analyzers []*Analyzer, patterns ...string) ([]Finding, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l, err := NewLoader(".")
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var finds []Finding
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			finds = append(finds, Finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message})
		}
	}
	m := NewModule(pkgs)
	mdiags, err := RunModuleAnalyzers(m, analyzers)
	if err != nil {
		return nil, err
	}
	for _, d := range mdiags {
		pos := m.Fset.Position(d.Pos)
		finds = append(finds, Finding{File: pos.Filename, Line: pos.Line, Col: pos.Column, Analyzer: d.Analyzer, Message: d.Message})
	}
	sort.Slice(finds, func(i, j int) bool {
		a, b := finds[i], finds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return finds, nil
}

// Vet runs VetFindings and writes one "file:line:col: message [analyzer]"
// line per finding — the format the CI problem matcher parses. It returns
// the number of findings.
func Vet(w io.Writer, analyzers []*Analyzer, patterns ...string) (int, error) {
	finds, err := VetFindings(analyzers, patterns...)
	if err != nil {
		return 0, err
	}
	for _, f := range finds {
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
	}
	return len(finds), nil
}

// VetJSON runs VetFindings and writes the findings as a JSON array (empty
// array, not null, for a clean tree — consumers can always range over
// it). It returns the number of findings.
func VetJSON(w io.Writer, analyzers []*Analyzer, patterns ...string) (int, error) {
	finds, err := VetFindings(analyzers, patterns...)
	if err != nil {
		return 0, err
	}
	if finds == nil {
		finds = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(finds); err != nil {
		return 0, err
	}
	return len(finds), nil
}

// Doc renders a one-line-per-analyzer summary for -help output.
func Doc(analyzers []*Analyzer) string {
	var b strings.Builder
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(&b, "  %-14s %s\n", a.Name, doc)
	}
	return b.String()
}
