package gpuwl

import (
	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/simt"
)

// KCore peels cores level by level with the two-phase scheme GPU
// implementations use: a uniform "mark" kernel flags every surviving
// vertex whose degree fell to the current k (every thread does the same
// two coalesced loads and a compare), then a compacted-worklist kernel
// walks only the marked vertices to decrement neighbor degrees. Because
// the overwhelming majority of thread-slots run the uniform mark kernel,
// kCore lands in the low-divergence corner of the paper's Figure 10.
func KCore(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "kCore"}
	}
	deg := make([]int32, n)
	core := make([]int32, n)
	removed := make([]bool, n)
	for i := int32(0); i < int32(n); i++ {
		deg[i] = int32(g.Degree(i))
	}
	degAddr := d.Alloc(n, 4)
	remAddr := d.Alloc(n, 1)
	wlAddr := d.Alloc(n, 4)
	worklist := make([]int32, 0, n)
	iters := 0
	left := n
	for k := int32(0); left > 0 && iters < 4*n+64; k++ {
		for {
			// Phase 1 (uniform): mark vertices peeling at this k.
			worklist = worklist[:0]
			d.Launch(n, func(tid int32, ln *simt.Lane) {
				ln.Ld(remAddr+uint64(tid), 1)
				ln.Ld(degAddr+uint64(tid)*4, 4)
				ln.Op(2)
				if removed[tid] || deg[tid] > k {
					return
				}
				removed[tid] = true
				core[tid] = k
				ln.St(remAddr+uint64(tid), 1)
				worklist = append(worklist, tid)
			})
			iters++
			if len(worklist) == 0 {
				break
			}
			left -= len(worklist)
			// Phase 2 (compacted): decrement neighbors of peeled vertices.
			wl := worklist
			d.Launch(len(wl), func(tid int32, ln *simt.Lane) {
				ln.Ld(wlAddr+uint64(tid)*4, 4)
				v := wl[tid]
				ln.Ld(g.RowAddr(v), 8)
				ln.Ld(g.RowAddr(v+1), 8)
				for e := g.RowPtr[v]; e < g.RowPtr[v+1]; e++ {
					ln.Ld(g.ColAddr(e), 4)
					nb := g.Col[e]
					ln.Op(1)
					if !removed[nb] {
						deg[nb]--
						ln.Atomic(degAddr+uint64(nb)*4, 4)
					}
				}
			})
			iters++
		}
	}
	maxCore := int32(0)
	sum := 0.0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
		sum += float64(c)
	}
	return Result{Name: "kCore", Stats: d.Stats(), Value: sum, Iterations: iters}
}

// CComp labels connected components with Soman's GPU algorithm [35]: an
// edge-centric hooking kernel (one thread per edge) alternating with a
// pointer-jumping kernel. Edge partitioning balances per-thread work, so
// branch divergence stays low while the scattered label accesses keep
// memory traffic — and achieved throughput — the highest in the suite
// (Figure 11).
func CComp(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "CComp"}
	}
	coo := g.ToCOO()
	e := len(coo.Src)
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	srcAddr := d.Alloc(e, 4)
	dstAddr := d.Alloc(e, 4)
	lblAddr := d.Alloc(n, 4)
	iters := 0
	for {
		hooked := false
		// Hooking: each edge thread links the larger root to the smaller.
		d.Launch(e, func(tid int32, ln *simt.Lane) {
			ln.Ld(srcAddr+uint64(tid)*4, 4)
			ln.Ld(dstAddr+uint64(tid)*4, 4)
			u, v := coo.Src[tid], coo.Dst[tid]
			ln.Ld(lblAddr+uint64(u)*4, 4)
			ln.Ld(lblAddr+uint64(v)*4, 4)
			lu, lv := label[u], label[v]
			ln.Op(2)
			if lu == lv {
				return
			}
			hi, lo := lu, lv
			if hi < lo {
				hi, lo = lo, hi
			}
			label[hi] = lo
			ln.Atomic(lblAddr+uint64(hi)*4, 4)
			hooked = true
		})
		iters++
		// Pointer jumping until every label is a root.
		for {
			jumped := false
			d.Launch(n, func(tid int32, ln *simt.Lane) {
				ln.Ld(lblAddr+uint64(tid)*4, 4)
				l := label[tid]
				ln.Ld(lblAddr+uint64(l)*4, 4)
				ln.Op(1)
				if label[l] != l {
					label[tid] = label[l]
					ln.St(lblAddr+uint64(tid)*4, 4)
					jumped = true
				}
			})
			iters++
			if !jumped {
				break
			}
		}
		if !hooked {
			break
		}
	}
	comps := 0
	for i, l := range label {
		if int32(i) == l {
			comps++
		}
	}
	return Result{Name: "CComp", Stats: d.Stats(), Value: float64(comps), Iterations: iters}
}

// GColor is the thread-centric Jones-Plassmann round: every uncolored
// vertex compares hashed priorities against all uncolored neighbors and,
// when it wins, scans neighbor colors for the smallest free one. The
// per-edge computation (hash, two compares, set update) is the heaviest of
// the thread-centric kernels — the paper attributes GColor's high BDR to
// exactly this heavier per-edge work.
func GColor(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "GColor"}
	}
	color := make([]int32, n)
	for i := range color {
		color[i] = -1
	}
	colAddr := d.Alloc(n, 4)
	prio := func(v int32) uint64 {
		x := uint64(v) * 0x9e3779b97f4a7c15
		x ^= x >> 31
		return x
	}
	iters := 0
	colored := 0
	for colored < n && iters < 4*n+64 {
		d.Launch(n, func(tid int32, ln *simt.Lane) {
			ln.Ld(colAddr+uint64(tid)*4, 4)
			ln.Op(1)
			if color[tid] >= 0 {
				return
			}
			p := prio(tid)
			ln.Op(3)
			isMax := true
			var used uint64
			for k := g.RowPtr[tid]; k < g.RowPtr[tid+1]; k++ {
				ln.Ld(g.ColAddr(k), 4)
				nb := g.Col[k]
				ln.Ld(colAddr+uint64(nb)*4, 4)
				ln.Op(5) // hash + priority compare + set update
				if c := color[nb]; c < 0 {
					if np := prio(nb); np > p || (np == p && nb > tid) {
						isMax = false
						break
					}
				} else if c < 64 {
					used |= 1 << uint(c)
				}
			}
			ln.Op(2)
			if !isMax {
				return
			}
			c := int32(0)
			for used&(1<<uint(c)) != 0 && c < 63 {
				c++
				ln.Op(1)
			}
			color[tid] = c
			ln.St(colAddr+uint64(tid)*4, 4)
			colored++
		})
		iters++
	}
	sum := 0.0
	for _, c := range color {
		sum += float64(c)
	}
	return Result{Name: "GColor", Stats: d.Stats(), Value: sum, Iterations: iters}
}

// TC counts triangles edge-centrically: one thread per (u,v) edge with
// u < v merge-intersects the two ordered adjacency lists. Edge partitioning
// keeps warps balanced (low BDR), the compare-dominated inner loop makes TC
// the suite's most compute-bound GPU kernel — highest IPC, lowest memory
// throughput (Figure 11) — and the low data intensity keeps its speedup
// over the CPU the smallest (Figure 12).
func TC(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "TC"}
	}
	coo := g.ToCOO()
	// Work-item expansion: each undirected edge (u < v) contributes
	// ceil(|smaller adjacency|/chunk) items of at most chunk binary-search
	// probes each. Chunking bounds per-thread work, which is what keeps the
	// edge-centric TC kernel's warps balanced (low BDR) despite skewed
	// degrees — the standard load-balancing trick of GPU triangle counters.
	const chunk = 8
	type item struct {
		small int32 // vertex whose list is probed element-wise
		big   int32 // vertex whose list is binary-searched
		v     int32 // the larger endpoint (triangle ordering filter)
		off   int64 // starting offset within the small list
	}
	var items []item
	for t := range coo.Src {
		u, v := coo.Src[t], coo.Dst[t]
		if u >= v {
			continue
		}
		a, b := u, v
		if g.Degree(a) > g.Degree(b) {
			a, b = b, a
		}
		// Host-side pre-filter: only elements > v can close a triangle
		// (u < v < w ordering), and rows are sorted, so items start at the
		// first such element. This keeps every device-side probe a full
		// search — uniform per-thread work.
		start := lowerBound(g.Col[g.RowPtr[a]:g.RowPtr[a+1]], v+1) + g.RowPtr[a]
		for off := start; off < g.RowPtr[a+1]; off += chunk {
			items = append(items, item{small: a, big: b, v: v, off: off})
		}
	}
	itemAddr := d.Alloc(len(items), 16)
	triangles := 0
	d.Launch(len(items), func(tid int32, ln *simt.Lane) {
		ln.Ld(itemAddr+uint64(tid)*16, 16)
		it := items[tid]
		ln.Op(3)
		end := it.off + chunk
		if end > g.RowPtr[it.small+1] {
			end = g.RowPtr[it.small+1]
		}
		lo0, hi0 := g.RowPtr[it.big], g.RowPtr[it.big+1]
		for e := it.off; e < end; e++ {
			ln.Ld(g.ColAddr(e), 4)
			w := g.Col[e]
			ln.Op(1)
			lo, hi := lo0, hi0
			for lo < hi {
				mid := (lo + hi) / 2
				ln.Ld(g.ColAddr(mid), 4)
				ln.Op(2)
				if g.Col[mid] < w {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < hi0 && g.Col[lo] == w {
				triangles++
				ln.Op(1)
			}
		}
	})
	return Result{Name: "TC", Stats: d.Stats(), Value: float64(triangles), Iterations: 1}
}

// lowerBound returns the first index in sorted xs with xs[i] >= x.
func lowerBound(xs []int32, x int32) int64 {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}
