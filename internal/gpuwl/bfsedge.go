package gpuwl

import (
	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/simt"
)

// BFSEdge is the edge-centric counterpart of BFS: every round one thread
// per edge tests whether its source sits on the frontier and relaxes its
// destination. It does strictly more total work than the thread-centric
// kernel (every edge is visited every round) but each thread's work is
// constant, collapsing branch divergence — the kernel-model ablation of
// DESIGN.md compares the two on the same input.
//
// BFSEdge is not part of the paper's 8-workload GPU suite; it exists for
// the thread-centric-vs-edge-centric design study (paper §5.3 discussion).
func BFSEdge(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "BFSEdge"}
	}
	coo := g.ToCOO()
	e := len(coo.Src)
	lvl := make([]int32, n)
	for i := range lvl {
		lvl[i] = -1
	}
	lvl[0] = 0
	srcAddr := d.Alloc(e, 4)
	dstAddr := d.Alloc(e, 4)
	lvlAddr := d.Alloc(n, 4)
	reached := 1
	iters := 0
	for cur := int32(0); ; cur++ {
		changed := false
		d.Launch(e, func(tid int32, ln *simt.Lane) {
			ln.Ld(srcAddr+uint64(tid)*4, 4)
			ln.Ld(dstAddr+uint64(tid)*4, 4)
			u, v := coo.Src[tid], coo.Dst[tid]
			ln.Ld(lvlAddr+uint64(u)*4, 4)
			ln.Op(2)
			if lvl[u] != cur {
				return
			}
			ln.Ld(lvlAddr+uint64(v)*4, 4)
			ln.Op(1)
			if lvl[v] < 0 {
				lvl[v] = cur + 1
				ln.St(lvlAddr+uint64(v)*4, 4)
				reached++
				changed = true
			}
		})
		iters++
		if !changed {
			break
		}
	}
	return Result{Name: "BFSEdge", Stats: d.Stats(), Value: float64(reached), Iterations: iters}
}
