// Package gpuwl implements the eight GPU workloads of GraphBIG (Table 3:
// BFS, SPath, kCore, CComp, GColor, TC, DCentr, BCentr) as SIMT kernels
// over the CSR/COO representations, mirroring the paper's GPU side: the
// dynamic vertex-centric graph is converted to CSR in the populate step
// and kernels follow either the thread-centric (one thread per vertex) or
// edge-centric (one thread per edge) model — the design axis behind the
// divergence differences of Figures 10 and 13.
package gpuwl

import (
	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/simt"
)

// Result is the outcome of one GPU workload run.
type Result struct {
	Name  string
	Stats simt.Stats
	// Value is a workload checksum (reached count, triangles, components…)
	// pinned by tests against the CPU implementation.
	Value float64
	// Iterations counts host-side kernel-launch rounds.
	Iterations int
}

// Runner is the common GPU workload signature: workloads allocate their
// device arrays, run their launch loop and leave counters on the device.
type Runner func(d *simt.Device, g *csr.Graph) Result

// BFS is the thread-centric level-synchronous traversal: every round each
// vertex thread tests its level and expands its neighbors if it sits on
// the frontier. Per-thread work tracks vertex degree, so degree variance
// turns directly into warp divergence.
func BFS(d *simt.Device, g *csr.Graph) Result {
	return bfsFrom(d, g, 0)
}

func bfsFrom(d *simt.Device, g *csr.Graph, src int32) Result {
	n := g.N
	lvl := make([]int32, n)
	for i := range lvl {
		lvl[i] = -1
	}
	if n == 0 {
		return Result{Name: "BFS"}
	}
	lvl[src] = 0
	lvlAddr := d.Alloc(n, 4)
	reached := 1
	iters := 0
	for cur := int32(0); ; cur++ {
		changed := false
		d.Launch(n, func(tid int32, ln *simt.Lane) {
			ln.Ld(lvlAddr+uint64(tid)*4, 4)
			ln.Op(2)
			if lvl[tid] != cur {
				return
			}
			ln.Ld(g.RowAddr(tid), 8)
			ln.Ld(g.RowAddr(tid+1), 8)
			for k := g.RowPtr[tid]; k < g.RowPtr[tid+1]; k++ {
				ln.Ld(g.ColAddr(k), 4)
				nb := g.Col[k]
				ln.Ld(lvlAddr+uint64(nb)*4, 4)
				ln.Op(2)
				if lvl[nb] < 0 {
					lvl[nb] = cur + 1
					ln.St(lvlAddr+uint64(nb)*4, 4)
					reached++
					changed = true
				}
			}
		})
		iters++
		if !changed {
			break
		}
	}
	return Result{Name: "BFS", Stats: d.Stats(), Value: float64(reached), Iterations: iters}
}

// SPath is the iterative (Bellman-Ford-style) relaxation used on GPUs in
// place of Dijkstra's sequential priority queue: active vertices relax all
// outgoing edges each round; updated distances activate their vertex for
// the next round. Like BFS it is thread-centric with a data-dependent
// working set, which the paper singles out as the cause of both workloads'
// lower GPU speedups.
func SPath(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "SPath"}
	}
	const inf = 1 << 60
	dist := make([]int64, n)
	active := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	active[0] = true
	distAddr := d.Alloc(n, 8)
	actAddr := d.Alloc(n, 1)
	iters := 0
	settled := 0
	for iters < 4*n {
		changed := false
		d.Launch(n, func(tid int32, ln *simt.Lane) {
			ln.Ld(actAddr+uint64(tid), 1)
			ln.Op(1)
			if !active[tid] {
				return
			}
			active[tid] = false
			ln.St(actAddr+uint64(tid), 1)
			ln.Ld(distAddr+uint64(tid)*8, 8)
			du := dist[tid]
			ln.Ld(g.RowAddr(tid), 8)
			ln.Ld(g.RowAddr(tid+1), 8)
			for k := g.RowPtr[tid]; k < g.RowPtr[tid+1]; k++ {
				ln.Ld(g.ColAddr(k), 4)
				ln.Ld(g.WAddr(k), 8)
				nb := g.Col[k]
				nd := du + int64(g.W[k])
				ln.Op(3)
				ln.Ld(distAddr+uint64(nb)*8, 8)
				if nd < dist[nb] {
					dist[nb] = nd
					active[nb] = true
					// atomicMin on the distance slot.
					ln.Atomic(distAddr+uint64(nb)*8, 8)
					ln.St(actAddr+uint64(nb), 1)
					changed = true
				}
			}
		})
		iters++
		if !changed {
			break
		}
	}
	sum := 0.0
	for _, dv := range dist {
		if dv < inf {
			settled++
			sum += float64(dv)
		}
	}
	return Result{Name: "SPath", Stats: d.Stats(), Value: float64(settled), Iterations: iters}
}
