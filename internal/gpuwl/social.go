package gpuwl

import (
	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/simt"
)

// DCentr computes degree centrality thread-centrically: each vertex thread
// streams its adjacency list and atomically bumps the (in-degree) counter
// of every neighbor it points at. The combination is the paper's Figure 10
// outlier: extreme branch divergence (pure degree-variance work with no
// compute to amortize it) and extreme memory divergence (scattered atomic
// updates that serialize within warps) — data-intensive enough to still
// push ~75 GB/s, but with IPC crushed by the atomic replays (Figure 11).
func DCentr(d *simt.Device, g *csr.Graph) Result {
	n := g.N
	if n == 0 {
		return Result{Name: "DCentr"}
	}
	centr := make([]int32, n)
	cenAddr := d.Alloc(n, 4)
	d.Launch(n, func(tid int32, ln *simt.Lane) {
		ln.Ld(g.RowAddr(tid), 8)
		ln.Ld(g.RowAddr(tid+1), 8)
		ln.Op(1)
		for k := g.RowPtr[tid]; k < g.RowPtr[tid+1]; k++ {
			ln.Ld(g.ColAddr(k), 4)
			nb := g.Col[k]
			centr[nb]++
			ln.Atomic(cenAddr+uint64(nb)*4, 4)
		}
		// Own out-degree contribution.
		centr[tid] += int32(g.RowPtr[tid+1] - g.RowPtr[tid])
		ln.St(cenAddr+uint64(tid)*4, 4)
	})
	sum := 0.0
	for _, c := range centr {
		sum += float64(c)
	}
	return Result{Name: "DCentr", Stats: d.Stats(), Value: sum, Iterations: 1}
}

// BCentr runs Brandes' betweenness centrality on the device for a small
// deterministic source sample: a thread-centric forward BFS accumulating
// sigma path counts, then level-by-level backward kernels accumulating
// float dependencies. The heavy per-edge floating-point work puts BCentr
// in the paper's branch-divergence-dominated group with GColor.
func BCentr(d *simt.Device, g *csr.Graph) Result {
	const sources = 4
	n := g.N
	if n == 0 {
		return Result{Name: "BCentr"}
	}
	bc := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	distAddr := d.Alloc(n, 4)
	sigAddr := d.Alloc(n, 8)
	dltAddr := d.Alloc(n, 8)
	bcAddr := d.Alloc(n, 8)
	iters := 0

	k := sources
	if k > n {
		k = n
	}
	for s := 0; s < k; s++ {
		src := int32(uint64(s) * uint64(n) / uint64(k))
		maxLvl := int32(0)
		for i := range dist {
			dist[i], sigma[i], delta[i] = -1, 0, 0
		}
		dist[src] = 0
		sigma[src] = 1
		// Forward: level-synchronous sigma accumulation.
		for cur := int32(0); ; cur++ {
			changed := false
			d.Launch(n, func(tid int32, ln *simt.Lane) {
				ln.Ld(distAddr+uint64(tid)*4, 4)
				ln.Op(1)
				if dist[tid] != cur {
					return
				}
				ln.Ld(sigAddr+uint64(tid)*8, 8)
				for e := g.RowPtr[tid]; e < g.RowPtr[tid+1]; e++ {
					ln.Ld(g.ColAddr(e), 4)
					nb := g.Col[e]
					ln.Ld(distAddr+uint64(nb)*4, 4)
					ln.Op(2)
					if dist[nb] < 0 {
						dist[nb] = cur + 1
						ln.St(distAddr+uint64(nb)*4, 4)
						changed = true
					}
					if dist[nb] == cur+1 {
						sigma[nb] += sigma[tid]
						ln.Atomic(sigAddr+uint64(nb)*8, 8)
						ln.Op(2)
					}
				}
			})
			iters++
			if !changed {
				maxLvl = cur
				break
			}
		}
		// Backward: dependency accumulation, one kernel per level.
		for cur := maxLvl; cur > 0; cur-- {
			d.Launch(n, func(tid int32, ln *simt.Lane) {
				ln.Ld(distAddr+uint64(tid)*4, 4)
				ln.Op(1)
				if dist[tid] != cur-1 {
					return
				}
				ln.Ld(sigAddr+uint64(tid)*8, 8)
				ln.Ld(dltAddr+uint64(tid)*8, 8)
				for e := g.RowPtr[tid]; e < g.RowPtr[tid+1]; e++ {
					ln.Ld(g.ColAddr(e), 4)
					nb := g.Col[e]
					ln.Ld(distAddr+uint64(nb)*4, 4)
					ln.Op(2)
					if dist[nb] == cur {
						ln.Ld(sigAddr+uint64(nb)*8, 8)
						ln.Ld(dltAddr+uint64(nb)*8, 8)
						delta[tid] += sigma[tid] / sigma[nb] * (1 + delta[nb])
						ln.Op(6) // div, mul, adds
						ln.St(dltAddr+uint64(tid)*8, 8)
					}
				}
				if tid != src && dist[tid] >= 0 {
					bc[tid] += delta[tid]
					ln.Ld(bcAddr+uint64(tid)*8, 8)
					ln.St(bcAddr+uint64(tid)*8, 8)
					ln.Op(2)
				}
			})
			iters++
		}
	}
	sum := 0.0
	for _, x := range bc {
		sum += x
	}
	return Result{Name: "BCentr", Stats: d.Stats(), Value: sum, Iterations: iters}
}

// All returns the eight GPU workloads in the paper's reporting order.
func All() []struct {
	Name string
	Run  Runner
} {
	return []struct {
		Name string
		Run  Runner
	}{
		{"BFS", BFS},
		{"SPath", SPath},
		{"kCore", KCore},
		{"CComp", CComp},
		{"GColor", GColor},
		{"TC", TC},
		{"DCentr", DCentr},
		{"BCentr", BCentr},
	}
}
