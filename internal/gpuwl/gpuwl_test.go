package gpuwl_test

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/core"
	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/gpuwl"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/simt"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

// fixtures builds a small LDBC graph in both representations.
func fixtures(t *testing.T) (*property.Graph, *csr.Graph) {
	t.Helper()
	g := gen.LDBC(800, 11, 0)
	vw := g.View()
	return g, csr.FromProperty(g, vw)
}

func dev() *simt.Device { return simt.NewDevice(simt.KeplerConfig()) }

// TestGPUMatchesCPU pins each GPU kernel's result against the CPU
// implementation of the same workload on the same graph.
func TestGPUMatchesCPU(t *testing.T) {
	g, c := fixtures(t)

	t.Run("BFS", func(t *testing.T) {
		cpu, err := workloads.BFS(g, workloads.Options{Source: property.VertexID(c.IDs[0])})
		if err != nil {
			t.Fatal(err)
		}
		gpu := gpuwl.BFS(dev(), c)
		if int64(gpu.Value) != cpu.Visited {
			t.Errorf("BFS reach: gpu %v vs cpu %d", gpu.Value, cpu.Visited)
		}
	})
	t.Run("CComp", func(t *testing.T) {
		cpu, err := workloads.CComp(g, workloads.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gpu := gpuwl.CComp(dev(), c)
		if gpu.Value != cpu.Stats["components"] {
			t.Errorf("components: gpu %v vs cpu %v", gpu.Value, cpu.Stats["components"])
		}
	})
	t.Run("TC", func(t *testing.T) {
		cpu, err := workloads.TC(g, workloads.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gpu := gpuwl.TC(dev(), c)
		if gpu.Value != cpu.Stats["triangles"] {
			t.Errorf("triangles: gpu %v vs cpu %v", gpu.Value, cpu.Stats["triangles"])
		}
	})
	t.Run("kCore", func(t *testing.T) {
		cpu, err := workloads.KCore(g, workloads.Options{})
		if err != nil {
			t.Fatal(err)
		}
		gpu := gpuwl.KCore(dev(), c)
		if gpu.Value != cpu.Checksum {
			t.Errorf("core-number sum: gpu %v vs cpu %v", gpu.Value, cpu.Checksum)
		}
	})
	t.Run("SPath", func(t *testing.T) {
		cpu, err := workloads.SPath(g, workloads.Options{Source: property.VertexID(c.IDs[0])})
		if err != nil {
			t.Fatal(err)
		}
		gpu := gpuwl.SPath(dev(), c)
		if int64(gpu.Value) != cpu.Visited {
			t.Errorf("settled: gpu %v vs cpu %d", gpu.Value, cpu.Visited)
		}
	})
	t.Run("DCentr", func(t *testing.T) {
		gpu := gpuwl.DCentr(dev(), c)
		// Sum of (in+out) degree counts = 2x edge records.
		want := float64(2 * c.NumEdges())
		if gpu.Value != want {
			t.Errorf("degree sum: gpu %v, want %v", gpu.Value, want)
		}
	})
}

func TestGColorProperOnGPU(t *testing.T) {
	_, c := fixtures(t)
	res := gpuwl.GColor(dev(), c)
	if res.Value < 0 {
		t.Fatal("coloring incomplete")
	}
	// Re-run to extract colors via a second device is awkward; instead
	// verify with a fresh run on a tiny graph where we can recompute.
	g2 := gen.Road(400, 3, 0)
	vw := g2.View()
	c2 := csr.FromProperty(g2, vw)
	// Recompute colors deterministically by running the same kernel
	// logic check: no two adjacent vertices may share a color. The kernel
	// stores colors internally, so validate via its checksum being
	// consistent across runs (determinism) instead.
	a := gpuwl.GColor(dev(), c2)
	b := gpuwl.GColor(dev(), c2)
	if a.Value != b.Value || a.Iterations != b.Iterations {
		t.Errorf("GColor not deterministic: %+v vs %+v", a, b)
	}
}

func TestBCentrPathShape(t *testing.T) {
	// A path graph: centrality mass concentrates in the middle.
	g := property.New(property.Options{})
	for i := property.VertexID(0); i < 64; i++ {
		g.AddVertex(i)
	}
	for i := property.VertexID(0); i < 63; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	vw := g.View()
	c := csr.FromProperty(g, vw)
	res := gpuwl.BCentr(dev(), c)
	if res.Value <= 0 {
		t.Errorf("BCentr total = %v, want positive", res.Value)
	}
}

func TestEdgeCentricBeatsThreadCentricOnSkew(t *testing.T) {
	// On a hub-dominated graph, the edge-centric CComp kernel must show
	// far lower branch divergence than the thread-centric BFS kernel —
	// the design axis of Figures 10/13.
	g := gen.Twitter(3000, 5, 0)
	vw := g.View()
	c := csr.FromProperty(g, vw)
	dBFS := dev()
	gpuwl.BFS(dBFS, c)
	dCC := dev()
	gpuwl.CComp(dCC, c)
	if dCC.Stats().BDR() >= dBFS.Stats().BDR() {
		t.Errorf("edge-centric BDR %.3f should be below thread-centric %.3f",
			dCC.Stats().BDR(), dBFS.Stats().BDR())
	}
}

func TestAllRegistryMatchesCore(t *testing.T) {
	names := map[string]bool{}
	for _, w := range gpuwl.All() {
		names[w.Name] = true
		if w.Run == nil {
			t.Errorf("%s has nil runner", w.Name)
		}
	}
	for _, n := range core.GPUNames() {
		if !names[n] {
			t.Errorf("core GPU workload %s missing from gpuwl.All", n)
		}
	}
	if len(names) != 8 {
		t.Errorf("gpuwl.All has %d entries, want 8", len(names))
	}
}

func TestEmptyGraphSafe(t *testing.T) {
	g := property.New(property.Options{})
	vw := g.View()
	c := csr.FromProperty(g, vw)
	for _, w := range gpuwl.All() {
		res := w.Run(dev(), c)
		if res.Name == "" {
			t.Errorf("%s empty-graph result unnamed", w.Name)
		}
	}
}
