package engine

import (
	"github.com/graphbig/graphbig-go/internal/concurrent"
	"github.com/graphbig/graphbig-go/internal/property"
)

// Partitioned delta-stepping (the SPathDelta kernel as a subgraph-centric
// computation). The structure mirrors partitionedTraverse: each partition
// runs a sequential delta-stepping pass over its owned subgraph — local
// dense buckets, single writer on the distance slots it owns, no mutex —
// and cut-edge relaxations travel as (vertex, distance) float messages
// between supersteps. Relaxation is label-correcting by nature, so the
// loop converges to exactly the flat kernel's distances: both compute the
// minimum over the same set of left-to-right float path sums, making the
// results bitwise identical (the workload differential tests pin this).

// wmsg is one weighted boundary message: "vertex V is reachable at
// tentative distance D".
type wmsg struct {
	v int32
	d float64
}

// SSSPStats summarizes one PartitionedSSSP call.
type SSSPStats struct {
	Relaxed      int64 // successful relaxations (local + applied boundary)
	Buckets      int64 // non-empty buckets drained, summed over partitions
	Supersteps   int
	BoundarySent int64
}

// ssspState extends the partitioned scaffolding with the delta-stepping
// buckets, allocated on first PartitionedSSSP use.
type ssspState struct {
	mail  *concurrent.Mailboxes[wmsg]
	bkt   [][][]int32 // bkt[p][b]: partition p's bucket b
	bhigh []int       // highest bucket index pushed per partition
	spare [][]int32   // per-partition drained-bucket backing, ping-ponged in localSSSP
}

func (e *Engine) ssspScaffold(ps *partState) *ssspState {
	if ps.sssp == nil {
		k := ps.plan.K
		ps.sssp = &ssspState{
			mail:  concurrent.NewMailboxes[wmsg](k),
			bkt:   make([][][]int32, k),
			bhigh: make([]int, k),
			spare: make([][]int32, k),
		}
	}
	return ps.sssp
}

// PartitionedSSSP runs delta-stepping from srcs over the view's partition
// plan. dist must hold +Inf for unreached slots and the sources' tentative
// distances (0 by convention); it is updated in place to the exact
// shortest-path distances. The view must carry a partition plan and the
// engine must not be tracked — callers gate on View().Partitions().
func (e *Engine) PartitionedSSSP(dist []float64, delta float64, srcs ...int32) SSSPStats {
	if len(dist) != e.n {
		panic("engine: dist length does not match view")
	}
	ps := e.partitioned()
	ss := e.ssspScaffold(ps)
	plan := ps.plan
	k := plan.K
	var st SSSPStats
	for p := 0; p < k; p++ {
		ps.dirty[p] = ps.dirty[p][:0]
		for b := range ss.bkt[p] {
			ss.bkt[p][b] = ss.bkt[p][b][:0]
		}
		ss.bhigh[p] = 0
	}
	ps.dirtyStamp = ps.nextStamp()
	for _, s := range srcs {
		p := plan.Of(s)
		ss.push(int(p), int(dist[s]/delta), s)
		ps.markDirty(p, s)
	}
	workers := e.Workers()
	for {
		st.Supersteps++
		// Phase 1 — each partition drains all its buckets to local
		// convergence; cross-partition edges are skipped here.
		concurrent.ParallelItems(k, workers, 1, func(p int) {
			e.localSSSP(ps, ss, dist, delta, property.Index32(p))
		})
		for p := 0; p < k; p++ {
			st.Relaxed += ps.localApply[p]
			st.Buckets += ps.localPush[p] // localPush reused: buckets drained
		}
		// Phase 2 — emit every dirty boundary vertex's tentative distance
		// across its cut edges, one message per (vertex, cut edge).
		concurrent.ParallelItems(k, workers, 1, func(p int) {
			e.emitSSSP(ps, ss, dist, property.Index32(p))
		})
		sent := ss.mail.Pending()
		st.BoundarySent += sent
		ps.dirtyStamp = ps.nextStamp()
		if sent == 0 {
			break
		}
		// Phase 3 — apply improvements into the owner's buckets.
		concurrent.ParallelItems(k, workers, 1, func(p int) {
			var got int64
			ss.mail.Drain(property.Index32(p), func(m wmsg) {
				if m.d < dist[m.v] {
					dist[m.v] = m.d
					ss.push(p, int(m.d/delta), m.v)
					ps.markDirty(property.Index32(p), m.v)
					got++
				}
			})
			ps.localApply[p] = got
		})
		var applied int64
		for p := 0; p < k; p++ {
			applied += ps.localApply[p]
			st.Relaxed += ps.localApply[p]
		}
		if applied == 0 {
			break
		}
	}
	return st
}

// push appends v to partition p's bucket b, growing the dense bucket
// array as needed. Only partition p's worker may call it during a phase.
func (ss *ssspState) push(p, b int, v int32) {
	for b >= len(ss.bkt[p]) {
		ss.bkt[p] = append(ss.bkt[p], nil)
	}
	ss.bkt[p][b] = append(ss.bkt[p][b], v)
	if b > ss.bhigh[p] {
		ss.bhigh[p] = b
	}
}

// localSSSP is the partition-local delta-stepping pass: drain buckets in
// ascending order, re-adding entries whose tentative distance improves,
// until every local bucket is empty. Stale entries (settled into a lower
// bucket since being pushed) are skipped, exactly like the flat kernel.
// Per-partition counters ride in localApply (relaxations) and localPush
// (non-empty buckets drained).
func (e *Engine) localSSSP(ps *partState, ss *ssspState, dist []float64, delta float64, p int32) {
	vw := e.vw
	lo, hi := ps.plan.Range(int(p))
	var relaxed, drained int64
	for b := 0; b <= ss.bhigh[p]; b++ {
		if b >= len(ss.bkt[p]) || len(ss.bkt[p][b]) == 0 {
			continue
		}
		drained++
		for {
			work := ss.bkt[p][b]
			if len(work) == 0 {
				break
			}
			// Ping-pong the drained slice with the partition's spare
			// backing: re-adds append into last round's capacity, and the
			// just-drained buffer becomes next round's spare, so
			// steady-state drains allocate nothing.
			ss.bkt[p][b] = ss.spare[p][:0]
			for _, u := range work {
				du := dist[u]
				if int(du/delta) < b {
					continue // stale entry; settled in a lower bucket
				}
				adj := vw.Adj(u)
				wts := vw.AdjW(u)[:len(adj)]
				for j, v := range adj {
					if v < lo || v >= hi {
						continue
					}
					nd := du + wts[j]
					if nd < dist[v] {
						dist[v] = nd
						ss.push(int(p), int(nd/delta), v)
						ps.markDirty(p, v)
						relaxed++
					}
				}
			}
			ss.spare[p] = work[:0]
		}
	}
	ss.bhigh[p] = 0
	ps.localApply[p] = relaxed
	ps.localPush[p] = drained
}

// emitSSSP posts each dirty boundary vertex's tentative distance plus the
// cut-edge weight to the edge target's owner.
func (e *Engine) emitSSSP(ps *partState, ss *ssspState, dist []float64, p int32) {
	vw := e.vw
	plan := ps.plan
	lo, hi := plan.Range(int(p))
	for _, u := range ps.dirty[p] {
		du := dist[u]
		adj := vw.Adj(u)
		wts := vw.AdjW(u)[:len(adj)]
		for j, v := range adj {
			if v >= lo && v < hi {
				continue
			}
			ss.mail.Put(p, plan.Of(v), wmsg{v: v, d: du + wts[j]})
		}
	}
	ps.dirty[p] = ps.dirty[p][:0]
}
