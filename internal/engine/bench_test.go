package engine

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/order"
	"github.com/graphbig/graphbig-go/internal/property"
)

// benchGraph is shared across the engine benchmarks: one LDBC graph at a
// size where frontier costs dominate setup but a full -benchtime 1x sweep
// (the CI bench-smoke configuration) stays under a few seconds.
var benchState struct {
	g  *property.Graph
	vw map[string]*property.View // keyed by ordering name
}

func benchGraph(b *testing.B) (*property.Graph, map[string]*property.View) {
	b.Helper()
	if benchState.g == nil {
		g := gen.LDBC(20000, 42, 0)
		views := make(map[string]*property.View, len(order.Names))
		for _, name := range order.Names {
			ord, err := order.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			views[name] = g.ViewWith(property.ViewOpts{Order: ord})
		}
		benchState.g = g
		benchState.vw = views
	}
	return benchState.g, benchState.vw
}

// benchTraverse runs one full direction-optimizing traversal per iteration
// over the view composed with the named ordering. The source is pinned by
// vertex ID via the baseline view so every ordering traverses the same
// logical graph from the same root.
func benchTraverse(b *testing.B, ordering string) {
	g, views := benchGraph(b)
	vw := views[ordering]
	src := vw.IndexOf(views["none"].Verts[0].ID)
	e := New(g, vw, 0)
	dist := make([]int32, e.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dist {
			dist[j] = -1
		}
		dist[src] = 0
		st := e.Traverse(&Spec{Dist: dist}, src)
		if st.Reached < 1 {
			b.Fatalf("traversal reached %d vertices", st.Reached)
		}
	}
}

func BenchmarkTraverseNone(b *testing.B)   { benchTraverse(b, "none") }
func BenchmarkTraverseDegree(b *testing.B) { benchTraverse(b, "degree") }
func BenchmarkTraverseHub(b *testing.B)    { benchTraverse(b, "hub") }
func BenchmarkTraverseRCM(b *testing.B)    { benchTraverse(b, "rcm") }

// BenchmarkTraversePushOnly isolates the push path (no direction switch),
// the configuration the pull-exit scratch reuse does not reach.
func BenchmarkTraversePushOnly(b *testing.B) {
	g, views := benchGraph(b)
	vw := views["none"]
	e := New(g, vw, 0)
	dist := make([]int32, e.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dist {
			dist[j] = -1
		}
		dist[0] = 0
		e.Traverse(&Spec{Dist: dist, NoPull: true}, 0)
	}
}

// View construction: the serial seed implementation vs the parallel
// pipeline, the pair the bench JSON's view_build record compares.
func BenchmarkViewBuildReference(b *testing.B) {
	g, _ := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ViewReference()
	}
}

func BenchmarkViewBuildParallel(b *testing.B) {
	g, _ := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ViewWith(property.ViewOpts{})
	}
}
