package engine

import (
	"github.com/graphbig/graphbig-go/internal/concurrent"
	"github.com/graphbig/graphbig-go/internal/partition"
	"github.com/graphbig/graphbig-go/internal/property"
)

// Partitioned (subgraph-centric) traversal mode — DESIGN.md §10.
//
// When the view carries a partition plan (property.ViewOpts.Partitions),
// Traverse runs GoFFish-style: the partition — not the vertex — is the
// unit of parallelism. Each partition's worker runs the push/pull kernels
// over its own contiguous vertex range sequentially to local convergence,
// so interior vertices have a single writer and need no CAS at all; only
// boundary vertices (the plan's cross-partition set) are exchanged, as
// (vertex, distance) messages routed through concurrent.Mailboxes between
// supersteps. Because a shorter path may enter a partition late, the
// local kernels are label-correcting — a claimed vertex is re-relaxed
// when a smaller distance arrives — and the superstep loop runs until an
// exchange applies no update, at which point every distance equals the
// flat engine's (the unique fixpoint of the distance equations; the
// differential tests in internal/workloads pin this per vertex).

// bmsg is one boundary-exchange message: "vertex V can be reached in D".
type bmsg struct {
	v, d int32
}

// partState is the cached per-engine scaffolding of partitioned
// traversals, allocated on first use and reused across Traverse calls
// (CComp runs one traversal per component).
type partState struct {
	plan *partition.Plan
	mail *concurrent.Mailboxes[bmsg]

	fr      [][]int32 // per-partition frontier seeding the next superstep
	nx      [][]int32 // per-partition local next-queue scratch
	dirty   [][]int32 // boundary vertices improved since the last exchange
	claimed [][]int32 // vertices claimed (-1 -> d) this traversal

	// mark/inFr are per-vertex epoch stamps (single writer: the owning
	// partition), replacing O(n) clears: mark tracks dirty-list
	// membership for the current exchange window, inFr tracks pull-round
	// frontier membership. stamp backs the exchange-window counter and is
	// only advanced between parallel phases; pull rounds inside the
	// concurrent localTraverse use frStamp[p] instead — inFr[u] is owned
	// by u's partition, so per-partition counters stay collision-free
	// without sharing a counter across workers.
	mark    []int64
	inFr    []int64
	stamp   int64
	frStamp []int64

	dirtyStamp  int64   // stamp of the open exchange window
	localPush   []int64 // per-partition push-round counters (one superstep)
	localPull   []int64
	localApply  []int64 // per-partition applied-update counts (one exchange)
	localClaims []int64 // per-partition claim counts for Stats.Reached

	sssp *ssspState // delta-stepping extension (sssp.go), lazily allocated
}

// partitioned returns the cached partitioned-mode scaffolding.
func (e *Engine) partitioned() *partState {
	if e.prt == nil {
		plan := e.vw.Partitions()
		k := plan.K
		e.prt = &partState{
			plan:        plan,
			mail:        concurrent.NewMailboxes[bmsg](k),
			fr:          make([][]int32, k),
			nx:          make([][]int32, k),
			dirty:       make([][]int32, k),
			claimed:     make([][]int32, k),
			mark:        make([]int64, e.n),
			inFr:        make([]int64, e.n),
			frStamp:     make([]int64, k),
			localPush:   make([]int64, k),
			localPull:   make([]int64, k),
			localApply:  make([]int64, k),
			localClaims: make([]int64, k),
		}
	}
	return e.prt
}

// ValidateExchange runs the Mailboxes debug assertions over the
// partitioned scaffolding's exchange buffers — the traversal mailboxes
// and, when delta-stepping ran, the SSSP mailboxes. Between traversals
// every box must be drained (requireEmpty); an engine that never entered
// partitioned mode validates trivially. The metamorphic suites call this
// on every engine a workload builds, so a phase-discipline violation
// surfaces across all workloads and partition counts instead of only in
// the partitioned differential test.
func (e *Engine) ValidateExchange(requireEmpty bool) error {
	if e.prt == nil {
		return nil
	}
	if err := e.prt.mail.Validate(requireEmpty); err != nil {
		return err
	}
	if e.prt.sssp != nil {
		return e.prt.sssp.mail.Validate(requireEmpty)
	}
	return nil
}

func (ps *partState) nextStamp() int64 {
	ps.stamp++
	return ps.stamp
}

// partitionedOK reports whether spec can run in partitioned mode: the
// label-correcting supersteps may revisit a vertex, so the exactly-once
// Visit contract (and the instrumented TrackedVisit stream) cannot be
// honored; those specs fall back to the flat engine.
func (e *Engine) partitionedOK(spec *Spec) bool {
	return e.vw.Partitions() != nil && !e.Tracked() &&
		spec.TrackedVisit == nil && spec.Visit == nil
}

// partitionedTraverse runs the superstep loop. Sources are already in cur
// (with Dist set by the caller); st accumulates the per-call stats,
// including the boundary-traffic counters.
func (e *Engine) partitionedTraverse(spec *Spec, cur *concurrent.Frontier, st *Stats) {
	ps := e.partitioned()
	plan := ps.plan
	k := plan.K
	dist := spec.Dist
	for p := 0; p < k; p++ {
		ps.fr[p] = ps.fr[p][:0]
		ps.dirty[p] = ps.dirty[p][:0]
		ps.claimed[p] = ps.claimed[p][:0]
		ps.localClaims[p] = 0
	}
	ps.dirtyStamp = ps.nextStamp()
	for _, s := range cur.Slice() {
		p := plan.Of(s)
		ps.fr[p] = append(ps.fr[p], s)
		ps.markDirty(p, s)
	}
	workers := e.Workers()
	for {
		st.Supersteps++
		// Phase 1 — partition-local push/pull to convergence. One worker
		// per partition at a time: interior claims are plain stores.
		concurrent.ParallelItems(k, workers, 1, func(p int) {
			e.localTraverse(ps, spec, property.Index32(p))
		})
		for p := 0; p < k; p++ {
			st.PushRounds += int(ps.localPush[p])
			st.PullRounds += int(ps.localPull[p])
		}
		// Phase 2 — emit: each partition walks its dirty boundary
		// vertices and posts their best-known distance across every cut
		// edge. The window closes here, so improvements applied in phase
		// 3 re-enter the next window's dirty list.
		concurrent.ParallelItems(k, workers, 1, func(p int) {
			e.emitBoundary(ps, spec, property.Index32(p))
		})
		sent := ps.mail.Pending()
		st.BoundarySent += sent
		ps.dirtyStamp = ps.nextStamp()
		if sent == 0 {
			break
		}
		// Phase 3 — apply: each partition drains its own mailbox column
		// and claims improvements into its next-superstep frontier.
		concurrent.ParallelItems(k, workers, 1, func(p int) {
			q := property.Index32(p)
			var got int64
			ps.mail.Drain(q, func(m bmsg) {
				if dv := dist[m.v]; dv < 0 || m.d < dv {
					e.claimPart(ps, spec, q, m.v, m.d)
					ps.fr[q] = append(ps.fr[q], m.v)
					got++
				}
			})
			ps.localApply[p] = got
		})
		var applied int64
		for p := 0; p < k; p++ {
			applied += ps.localApply[p]
		}
		if applied == 0 {
			break
		}
	}
	// Final stats from the claim lists: distances may have improved after
	// first claim, so Reached/Depth read the converged values.
	for p := 0; p < k; p++ {
		st.Reached += ps.localClaims[p]
		for _, v := range ps.claimed[p] {
			if d := dist[v]; d > st.Depth {
				st.Depth = d
			}
		}
	}
}

// claimPart records an improvement of v to nd inside partition p. First
// claims (Dist going -1 -> nd) take the traversal label and count toward
// Reached; any improvement of a boundary vertex schedules it for the next
// exchange emission exactly once per window.
func (e *Engine) claimPart(ps *partState, spec *Spec, p, v, nd int32) {
	if spec.Dist[v] < 0 {
		if spec.Labels != nil {
			spec.Labels[v] = spec.Label
		}
		ps.claimed[p] = append(ps.claimed[p], v)
		ps.localClaims[p]++
	}
	spec.Dist[v] = nd
	ps.markDirty(p, v)
}

// markDirty schedules boundary vertex v for the next exchange emission,
// at most once per window (interior vertices are ignored — their
// improvements never cross a cut edge).
func (ps *partState) markDirty(p, v int32) {
	if ps.plan.Boundary[v] && ps.mark[v] != ps.dirtyStamp {
		ps.mark[v] = ps.dirtyStamp
		ps.dirty[p] = append(ps.dirty[p], v)
	}
}

// localTraverse is the partition-local kernel: the flat engine's
// direction-optimizing loop restricted to the partition's own vertex
// range, run sequentially by the partition's worker. Push rounds scatter
// the local frontier across intra-partition edges; pull rounds sweep the
// owned range against the frontier stamp. Cross-partition edges are
// deliberately not walked here — emitBoundary covers them from the dirty
// list, so each cut edge is traversed once per window, not once per
// local round.
func (e *Engine) localTraverse(ps *partState, spec *Spec, p int32) {
	vw := e.vw
	dist := spec.Dist
	lo, hi := ps.plan.Range(int(p))
	owned := int64(hi - lo)
	ps.localPush[p] = 0
	ps.localPull[p] = 0
	cur := ps.fr[p]
	next := ps.nx[p][:0]
	if len(cur) == 0 {
		return
	}
	edgesLeft := ps.plan.LocalEdges[p]
	scout := int64(0)
	for _, u := range cur {
		scout += int64(vw.Degree(u))
	}
	var pushRounds, pullRounds int64
	for len(cur) > 0 {
		if !spec.NoPull && scout > edgesLeft/Alpha {
			// Pull rounds: stamp the frontier, sweep the owned range.
			for {
				ps.frStamp[p]++
				fs := ps.frStamp[p]
				for _, u := range cur {
					ps.inFr[u] = fs
				}
				next = next[:0]
				for v := lo; v < hi; v++ {
					dv := dist[v]
					best := dv
					for _, u := range vw.InAdj(v) {
						if u < lo || u >= hi || ps.inFr[u] != fs {
							continue
						}
						if nd := dist[u] + 1; best < 0 || nd < best {
							best = nd
						}
					}
					if best != dv {
						e.claimPart(ps, spec, p, v, best)
						next = append(next, v)
					}
				}
				pullRounds++
				cur, next = next, cur
				awake := int64(len(cur))
				if awake == 0 || awake < owned/Beta {
					break
				}
			}
			scout = 0
			for _, u := range cur {
				scout += int64(vw.Degree(u))
			}
			edgesLeft = 0 // sweep covered the remainder; finish in push mode
			continue
		}
		// Push round: scatter the local frontier over owned targets.
		next = next[:0]
		for _, u := range cur {
			nd := dist[u] + 1
			for _, v := range vw.Adj(u) {
				if v < lo || v >= hi {
					continue
				}
				if dv := dist[v]; dv < 0 || nd < dv {
					e.claimPart(ps, spec, p, v, nd)
					next = append(next, v)
				}
			}
		}
		pushRounds++
		edgesLeft -= scout
		cur, next = next, cur
		scout = 0
		for _, u := range cur {
			scout += int64(vw.Degree(u))
		}
	}
	ps.fr[p] = cur[:0]
	ps.nx[p] = next[:0]
	ps.localPush[p] = pushRounds
	ps.localPull[p] = pullRounds
}

// emitBoundary posts the best-known distance of every dirty boundary
// vertex across its cut edges. Message volume — the cross-partition
// traffic the BENCH records track — is one message per (dirty vertex,
// cut edge) pair per superstep.
func (e *Engine) emitBoundary(ps *partState, spec *Spec, p int32) {
	vw := e.vw
	plan := ps.plan
	lo, hi := plan.Range(int(p))
	for _, u := range ps.dirty[p] {
		nd := spec.Dist[u] + 1
		for _, v := range vw.Adj(u) {
			if v >= lo && v < hi {
				continue
			}
			ps.mail.Put(p, plan.Of(v), bmsg{v: v, d: nd})
		}
	}
	ps.dirty[p] = ps.dirty[p][:0]
}
