package engine

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/mem"
	"github.com/graphbig/graphbig-go/internal/property"
)

// chain builds 0-1-2-...-(n-1) as an undirected path.
func chain(n int) *property.Graph {
	g := property.New(property.Options{})
	for i := 0; i < n; i++ {
		g.AddVertex(property.VertexID(i))
	}
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(property.VertexID(i), property.VertexID(i+1), 1); err != nil {
			panic(err)
		}
	}
	return g
}

func newDist(n int) []int32 {
	d := make([]int32, n)
	for i := range d {
		d[i] = -1
	}
	return d
}

func TestTraverseChainLevels(t *testing.T) {
	g := chain(10)
	vw := g.View()
	for _, workers := range []int{1, 4} {
		e := New(g, vw, workers)
		dist := newDist(e.N())
		dist[0] = 0
		st := e.Traverse(&Spec{Dist: dist}, 0)
		if st.Reached != 10 {
			t.Errorf("workers=%d: Reached = %d, want 10", workers, st.Reached)
		}
		if st.Depth != 9 {
			t.Errorf("workers=%d: Depth = %d, want 9", workers, st.Depth)
		}
		for i := range dist {
			if dist[i] != int32(i) {
				t.Errorf("workers=%d: dist[%d] = %d, want %d", workers, i, dist[i], i)
			}
		}
	}
}

// On a dense-frontier graph the direction-optimizer must take pull rounds
// yet still produce the same levels as pure push.
func TestTraverseDirectionOptimizedMatchesPush(t *testing.T) {
	g := gen.LDBC(2000, 7, 0)
	vw := g.View()
	e := New(g, vw, 4)

	push := newDist(e.N())
	src := int32(0)
	push[src] = 0
	pst := e.Traverse(&Spec{Dist: push, NoPull: true}, src)

	opt := newDist(e.N())
	opt[src] = 0
	ost := e.Traverse(&Spec{Dist: opt}, src)

	if pst.PullRounds != 0 {
		t.Errorf("NoPull run took %d pull rounds", pst.PullRounds)
	}
	if ost.PullRounds == 0 {
		t.Log("direction optimizer never pulled on LDBC; heuristic may need attention")
	}
	if pst.Reached != ost.Reached || pst.Depth != ost.Depth {
		t.Errorf("stats diverge: push %+v vs dir-opt %+v", pst, ost)
	}
	for i := range push {
		if push[i] != opt[i] {
			t.Fatalf("dist[%d]: push %d vs dir-opt %d", i, push[i], opt[i])
		}
	}
}

// TestTraverseHierFrontierDifferential forces the pull phase — which
// densifies and sparsifies through the hierarchical frontier bitmaps —
// on a dense graph and checks the resulting levels against a pure-push
// oracle at k∈{1,4} workers. A lost summary mark or a broken AppendSet
// would surface as diverging levels or a short reach count.
func TestTraverseHierFrontierDifferential(t *testing.T) {
	g := gen.LDBC(3000, 9, 1)
	vw := g.View()
	oracle := newDist(vw.Len())
	oracle[0] = 0
	ost := New(g, vw, 1).Traverse(&Spec{Dist: oracle, NoPull: true}, 0)
	for _, workers := range []int{1, 4} {
		e := New(g, vw, workers)
		dist := newDist(e.N())
		dist[0] = 0
		st := e.Traverse(&Spec{Dist: dist}, 0)
		if st.PullRounds == 0 {
			t.Fatalf("workers=%d: no pull rounds; the hierarchical frontier was not exercised", workers)
		}
		if st.Reached != ost.Reached || st.Depth != ost.Depth {
			t.Errorf("workers=%d: stats diverge: %+v vs push oracle %+v", workers, st, ost)
		}
		for i := range dist {
			if dist[i] != oracle[i] {
				t.Fatalf("workers=%d: dist[%d] = %d, oracle %d", workers, i, dist[i], oracle[i])
			}
		}
	}
}

func TestTraverseVisitExactlyOnceAndLabels(t *testing.T) {
	g := gen.Twitter(800, 11, 0)
	vw := g.View()
	e := New(g, vw, 4)
	dist := newDist(e.N())
	labels := make([]int32, e.N())
	for i := range labels {
		labels[i] = -1
	}
	visits := make([]int32, e.N()) // only claimed slots written; owner-exclusive via CAS
	dist[3] = 0
	labels[3] = 99
	st := e.Traverse(&Spec{
		Dist:   dist,
		Label:  99,
		Labels: labels,
		Visit:  func(v, round int32) { visits[v]++ },
	}, 3)
	var reached int64 = 0
	for i := range dist {
		if dist[i] >= 0 {
			reached++
			if labels[i] != 99 {
				t.Fatalf("claimed vertex %d has label %d", i, labels[i])
			}
			if int32(i) != 3 && visits[i] != 1 {
				t.Fatalf("vertex %d visited %d times", i, visits[i])
			}
		} else if visits[i] != 0 {
			t.Fatalf("unclaimed vertex %d got a Visit call", i)
		}
	}
	if reached != st.Reached {
		t.Errorf("Stats.Reached = %d but %d slots claimed", st.Reached, reached)
	}
}

// Reusing one Dist array across Traverse calls must never re-claim
// previously labeled vertices (the CComp pattern).
func TestTraverseMultiComponentReuse(t *testing.T) {
	g := property.New(property.Options{})
	// Two disjoint triangles.
	for i := 0; i < 6; i++ {
		g.AddVertex(property.VertexID(i))
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		if err := g.AddEdge(property.VertexID(e[0]), property.VertexID(e[1]), 1); err != nil {
			t.Fatal(err)
		}
	}
	vw := g.View()
	e := New(g, vw, 2)
	dist := newDist(e.N())
	labels := newDist(e.N())

	dist[0] = 0
	labels[0] = 0
	st1 := e.Traverse(&Spec{Dist: dist, Label: 0, Labels: labels}, 0)
	if st1.Reached != 3 {
		t.Fatalf("first component Reached = %d, want 3", st1.Reached)
	}
	dist[3] = 0
	labels[3] = 1
	st2 := e.Traverse(&Spec{Dist: dist, Label: 1, Labels: labels}, 3)
	if st2.Reached != 3 {
		t.Fatalf("second component Reached = %d, want 3", st2.Reached)
	}
	want := []int32{0, 0, 0, 1, 1, 1}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels[%d] = %d, want %d", i, labels[i], want[i])
		}
	}
}

// A tracker pins the engine to the single-threaded TrackedVisit loop and
// never touches the native callbacks.
func TestTraverseTrackedMode(t *testing.T) {
	g := chain(6)
	vw := g.View() // view before tracker, matching the harness ordering
	g.SetTracker(mem.NewCounting())
	defer g.SetTracker(nil)

	e := New(g, vw, 8)
	if !e.Tracked() || e.Workers() != 1 {
		t.Fatalf("Tracked=%v Workers=%d, want tracked single-worker", e.Tracked(), e.Workers())
	}
	dist := newDist(e.N())
	dist[0] = 0
	var order []int32
	st := e.Traverse(&Spec{
		Dist: dist,
		Visit: func(v, round int32) {
			t.Error("native Visit must not run in tracked mode")
		},
		TrackedVisit: func(k int, u, round int32, emit func(v int32) int) {
			for _, v := range vw.Adj(u) {
				if dist[v] < 0 {
					dist[v] = round
					// One emit per round on a chain: slot in the next
					// frontier is always 0 (frontiers reset each round).
					if slot := emit(v); slot != 0 {
						t.Errorf("emit slot %d, want 0", slot)
					}
					order = append(order, v)
				}
			}
		},
	}, 0)
	if st.Reached != 6 || st.Depth != 5 {
		t.Errorf("stats %+v, want Reached=6 Depth=5", st)
	}
	if st.PullRounds != 0 {
		t.Errorf("tracked run took pull rounds: %+v", st)
	}
	for i, v := range order {
		if v != int32(i+1) {
			t.Fatalf("discovery order %v not deterministic chain order", order)
		}
	}
}

func TestTraverseDistLengthMismatchPanics(t *testing.T) {
	g := chain(4)
	e := New(g, g.View(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Dist length did not panic")
		}
	}()
	e.Traverse(&Spec{Dist: make([]int32, 2)}, 0)
}
