// Package engine implements the suite's unified vertex-centric frontier
// engine: one direction-optimizing (push/pull) traversal core plus shared
// vertex-map scaffolding, hosting the native paths of the frontier
// workloads (BFS, BFSDirOpt, CComp, CCompLP, SPathDelta, GColor, DCentr,
// BCentr) and the index-resolved adjacency the remaining analytics kernels
// (SPath, kCore) iterate directly.
//
// Native (wall-clock) runs iterate the property.View's flat CSR-like
// arrays — dense int32 neighbor indices with zero per-edge FindVertex hash
// lookups — and fan out across workers. Push phases claim vertices with an
// atomic compare-and-swap on the distance array; pull phases partition the
// vertex range so every slot has a single writer, keeping the engine clean
// under the race detector.
//
// Instrumented runs (a mem.Tracker installed on the graph) pin the engine
// to single-threaded push mode, mirroring the suite-wide workers() rule:
// the engine supplies only the frontier scaffolding while the workload's
// TrackedVisit callback walks the framework primitives
// (Neighbors/FindVertex/GetProp/SetProp) itself, so the simulated event
// stream — and hence Figures 1 and 5-9 — is bit-identical to the
// pre-engine implementations.
package engine

import (
	"github.com/graphbig/graphbig-go/internal/concurrent"
	"github.com/graphbig/graphbig-go/internal/property"
)

// Direction-optimizing switch parameters (Beamer's alpha/beta, the GAP
// Benchmark Suite defaults): push switches to pull when the frontier's
// out-degree sum exceeds 1/alpha of the unexplored edges, and pull hands
// back to push when the awake count falls below 1/beta of the vertices.
const (
	Alpha = 15
	Beta  = 18
)

// Engine hosts frontier computations over an index-resolved view of one
// graph. It is cheap to construct and reusable across Traverse calls
// within a workload run (frontier buffers are cached); it is not safe for
// concurrent use by multiple goroutines.
type Engine struct {
	g       *property.Graph
	vw      *property.View
	workers int // raw request; resolved by Workers()
	n       int

	// Cached traversal scaffolding, allocated on first use and reused
	// across Traverse calls (CComp runs one traversal per component).
	cur, next *concurrent.Frontier
	bits      [2]*concurrent.HierBitmap
	sparse    []int32    // scratch for bitmap sparsification at pull exit
	prt       *partState // partitioned-mode scaffolding (partitioned.go)
}

// New returns an engine over g's view. workers follows the suite rule:
// <= 0 selects GOMAXPROCS, and instrumented graphs are always pinned to a
// single worker.
func New(g *property.Graph, vw *property.View, workers int) *Engine {
	return &Engine{g: g, vw: vw, workers: workers, n: vw.Len()}
}

// Tracked reports whether an instrumentation sink is installed, which pins
// the engine to deterministic single-threaded push mode.
func (e *Engine) Tracked() bool { return e.g.Tracker() != nil }

// Workers resolves the effective parallelism (1 when tracked).
func (e *Engine) Workers() int {
	if e.Tracked() {
		return 1
	}
	return concurrent.Workers(e.workers)
}

// N returns the vertex count of the view.
func (e *Engine) N() int { return e.n }

// View returns the underlying index-resolved snapshot.
func (e *Engine) View() *property.View { return e.vw }

// Graph returns the underlying property graph.
func (e *Engine) Graph() *property.Graph { return e.g }

// ForVertices runs body(i) for every dense index, work-stealing across the
// engine's workers with the given grain; with one worker it runs inline in
// index order, which keeps instrumented runs deterministic.
func (e *Engine) ForVertices(grain int, body func(i int)) {
	concurrent.ParallelItems(e.n, e.Workers(), grain, body)
}

// ForItems runs body(i) for every i in [0,m) across the engine's workers.
func (e *Engine) ForItems(m, grain int, body func(i int)) {
	concurrent.ParallelItems(m, e.Workers(), grain, body)
}

// ForChunks splits [0,n) into contiguous per-worker chunks and runs
// body(lo,hi) concurrently. Pull phases use it so every vertex slot has a
// single writer.
func (e *Engine) ForChunks(body func(lo, hi int)) {
	concurrent.ParallelRange(e.n, e.Workers(), body)
}

// frontiers returns the cached level frontiers, allocating on first use.
func (e *Engine) frontiers() (cur, next *concurrent.Frontier) {
	if e.cur == nil {
		e.cur = concurrent.NewFrontier(e.n)
		e.next = concurrent.NewFrontier(e.n)
	}
	e.cur.Reset()
	e.next.Reset()
	return e.cur, e.next
}

// bitmaps returns the cached dense-frontier bitmaps, allocating on first
// use. Callers clear them before reuse. The hierarchical form keeps the
// per-round Clear and the pull-exit sparsification proportional to the
// populated words instead of the vertex count (DESIGN.md §12).
func (e *Engine) bitmaps() (cur, next *concurrent.HierBitmap) {
	if e.bits[0] == nil {
		e.bits[0] = concurrent.NewHierBitmap(e.n)
		e.bits[1] = concurrent.NewHierBitmap(e.n)
	}
	return e.bits[0], e.bits[1]
}
