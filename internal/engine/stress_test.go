package engine

import (
	"math/rand/v2"
	"sync"
	"testing"

	"github.com/graphbig/graphbig-go/internal/gen"
)

// TestTraverseConcurrentEnginesStress runs many push and direction-
// optimized traversals concurrently over one shared View, with worker
// counts drawn from a seeded generator. Engines are per-goroutine (an
// Engine is not safe for concurrent Traverse calls), but the View, its
// CSR arrays and the Graph are shared read-only — this is the shape a
// benchmark harness sweeping worker counts produces, and the test exists
// to let `go test -race` patrol it.
func TestTraverseConcurrentEnginesStress(t *testing.T) {
	g := gen.LDBC(1500, 6, 42)
	vw := g.View()

	ref := newDist(len(vw.Verts))
	ref[0] = 0
	refStats := New(g, vw, 1).Traverse(&Spec{Dist: ref, NoPull: true}, 0)
	if refStats.Reached == 0 {
		t.Fatal("reference traversal reached nothing")
	}

	rng := rand.New(rand.NewPCG(42, 1))
	const goroutines = 8
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		workers := 1 + rng.IntN(8)
		noPull := gi%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				eng := New(g, vw, workers)
				dist := newDist(eng.N())
				dist[0] = 0
				st := eng.Traverse(&Spec{Dist: dist, NoPull: noPull}, 0)
				if st.Reached != refStats.Reached || st.Depth != refStats.Depth {
					t.Errorf("workers=%d noPull=%v: stats %+v, want %+v", workers, noPull, st, refStats)
					return
				}
				for i := range dist {
					if dist[i] != ref[i] {
						t.Errorf("workers=%d noPull=%v: dist[%d] = %d, want %d", workers, noPull, i, dist[i], ref[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
