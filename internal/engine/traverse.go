package engine

import (
	"sync/atomic"

	"github.com/graphbig/graphbig-go/internal/concurrent"
	"github.com/graphbig/graphbig-go/internal/property"
)

// Spec configures one Traverse call. Dist is the only required field: it is
// both the output (level/component label per dense index) and the visited
// structure — a vertex with Dist[v] >= 0 is never re-claimed, so callers
// can run several traversals over one array (CComp labels components by
// reusing it across calls).
type Spec struct {
	// Dist holds -1 for unvisited slots; Traverse writes the discovery
	// round (0 for sources) into each claimed slot. len(Dist) must equal
	// the engine's vertex count.
	Dist []int32

	// Visit, if set, is called exactly once per newly claimed vertex with
	// its discovery round. In native runs it may be called from multiple
	// goroutines concurrently; it must not touch framework primitives.
	// Sources do not get a Visit call — callers initialize them.
	Visit func(v, round int32)

	// Label, if set with Labels, is written to Labels[v] when v is
	// claimed, giving CComp-style workloads a race-free component tag
	// without a second pass.
	Label  int32
	Labels []int32

	// NoPull forces pure push mode (for workloads whose semantics depend
	// on push-order effects, or for comparison runs).
	NoPull bool

	// TrackedVisit hosts the workload's instrumented per-frontier-item
	// body: k is the position of u in the current frontier, and emit
	// enqueues a newly discovered vertex for the next round, returning its
	// position in that frontier (legacy loops record a simulated store at
	// that slot). When a tracker is installed the engine runs a
	// single-threaded push loop that only calls TrackedVisit — the event
	// stream is entirely the workload's own, bit-identical to the
	// pre-engine implementations.
	TrackedVisit func(k int, u, round int32, emit func(v int32) int)
}

// Stats summarizes one Traverse call. PushRounds/PullRounds count global
// rounds in flat mode and the sum of partition-local rounds in partitioned
// mode; Supersteps and BoundarySent are zero except in partitioned mode.
type Stats struct {
	Reached    int64 // vertices claimed, including the sources
	Depth      int32 // highest round assigned (0 if only sources)
	PushRounds int
	PullRounds int

	Supersteps   int   // partitioned mode: boundary-exchange iterations
	BoundarySent int64 // partitioned mode: cross-partition messages posted
}

// Traverse runs a level-synchronous traversal from srcs. Sources must
// already have Dist[src] set (by convention 0) by the caller; Traverse
// claims every vertex reachable through unvisited slots and returns the
// per-call stats.
//
// Native runs direction-optimize: rounds run in push mode (scatter from a
// sparse frontier, atomic CAS claims) until the frontier's out-degree sum
// exceeds unexplored/Alpha, then in pull mode (every unvisited vertex
// scans its in-neighbors against a dense bitmap, single writer per slot)
// until the awake count drops below n/Beta. Instrumented runs always use
// the single-threaded push loop around Spec.TrackedVisit.
func (e *Engine) Traverse(spec *Spec, srcs ...int32) Stats {
	if len(spec.Dist) != e.n {
		panic("engine: Spec.Dist length does not match view")
	}
	cur, next := e.frontiers()
	for _, s := range srcs {
		cur.Push(s)
	}
	st := Stats{Reached: int64(len(srcs))}
	switch {
	case e.Tracked():
		e.trackedPush(spec, cur, next, &st)
	case e.partitionedOK(spec):
		e.partitionedTraverse(spec, cur, &st)
	default:
		e.nativeTraverse(spec, cur, next, &st)
	}
	return st
}

// trackedPush is the deterministic single-threaded frontier loop backing
// instrumented runs. All per-vertex and per-edge work — and therefore the
// entire tracker event stream — lives in the workload's TrackedVisit.
func (e *Engine) trackedPush(spec *Spec, cur, next *concurrent.Frontier, st *Stats) {
	// emit captures next by reference, so the frontier swap below retargets
	// it automatically.
	emit := func(v int32) int {
		next.Push(v)
		return next.Len() - 1
	}
	round := int32(1)
	for cur.Len() > 0 {
		fr := cur.Slice()
		for k := range fr {
			spec.TrackedVisit(k, fr[k], round, emit)
		}
		st.Reached += int64(next.Len())
		if next.Len() > 0 {
			st.Depth = round
		}
		st.PushRounds++
		cur, next = next, cur
		next.Reset()
		round++
	}
}

func (e *Engine) nativeTraverse(spec *Spec, cur, next *concurrent.Frontier, st *Stats) {
	vw := e.vw
	// edgesLeft approximates the unexplored-edge count driving the
	// push->pull switch; scout is the out-degree sum of the live frontier.
	edgesLeft := vw.EdgeTotal()
	scout := int64(0)
	for _, s := range cur.Slice() {
		scout += int64(vw.Degree(s))
	}
	round := int32(1)
	for cur.Len() > 0 {
		if !spec.NoPull && scout > edgesLeft/Alpha {
			e.pullPhase(spec, cur, &round, st)
			scout = 0
			for _, s := range cur.Slice() {
				scout += int64(vw.Degree(s))
			}
			edgesLeft = 0 // pull scanned the remainder; stay in push from here
			continue
		}
		produced, scouted := e.pushRound(spec, cur, next, round)
		edgesLeft -= scout
		scout = scouted
		st.Reached += produced
		if produced > 0 {
			st.Depth = round
		}
		st.PushRounds++
		cur, next = next, cur
		next.Reset()
		round++
	}
}

// pushRound scatters from the sparse frontier: each worker claims
// unvisited neighbors with an atomic CAS on Dist, which makes the claim
// the sole arbiter — no racy reads of shared workload state. Returns the
// number of vertices produced and the sum of their degrees (scout count).
func (e *Engine) pushRound(spec *Spec, cur, next *concurrent.Frontier, round int32) (int64, int64) {
	vw := e.vw
	dist := spec.Dist
	fr := cur.Slice()
	var produced, scouted atomic.Int64
	e.ForItems(len(fr), 64, func(k int) {
		u := fr[k]
		var p, s int64
		for _, v := range vw.Adj(u) {
			if atomic.LoadInt32(&dist[v]) < 0 && atomic.CompareAndSwapInt32(&dist[v], -1, round) {
				if spec.Labels != nil {
					spec.Labels[v] = spec.Label
				}
				if spec.Visit != nil {
					spec.Visit(v, round)
				}
				next.Push(v)
				p++
				s += int64(vw.Degree(v))
			}
		}
		if p != 0 {
			produced.Add(p)
			scouted.Add(s)
		}
	})
	return produced.Load(), scouted.Load()
}

// pullPhase runs bottom-up rounds: the sparse frontier is densified into a
// bitmap, then every unvisited vertex scans its in-neighbors for a parent
// on the frontier. Dist slots are written only by the worker owning their
// chunk, so the phase needs no atomics on Dist. Rounds continue until the
// awake count drops below n/Beta (or the traversal dies out), at which
// point the surviving bitmap is sparsified back into cur for push mode.
//
// The scan is prefetch-friendly: the reverse-CSR offset and neighbor
// arrays are hoisted out of the loop once, each chunk walks a contiguous
// offset window, and every in-neighbor row is cut out as one slice — the
// offsets stream linearly, the row loads stream linearly, and the only
// irregular accesses left are the frontier-bitmap probes.
func (e *Engine) pullPhase(spec *Spec, cur *concurrent.Frontier, round *int32, st *Stats) {
	dist := spec.Dist
	n := e.n
	curBits, nextBits := e.bitmaps()
	curBits.Clear()
	for _, v := range cur.Slice() {
		curBits.Set(int(v))
	}
	inOff, inNbr := e.vw.InOff, e.vw.InNbr
	for {
		nextBits.Clear()
		var produced atomic.Int64
		r := *round
		e.ForChunks(func(lo, hi int) {
			var p int64
			if lo >= hi {
				return
			}
			// Re-slice to the chunk extent: d and off are windows of the
			// same [lo,hi) range, with off one element longer so off[dv+1]
			// reads the row end. The two one-time probes teach the
			// bounds-check eliminator (and the vet prover) that relation in
			// both directions, so the loop body indexes check-free.
			d := dist[lo:hi]
			off := inOff[lo : hi+1]
			_ = off[len(d)]
			_ = d[len(off)-2]
			for dv := range d {
				if d[dv] >= 0 {
					continue
				}
				row := inNbr[off[dv]:off[dv+1]]
				claimed := false
				for _, u := range row {
					if curBits.Test(int(u)) {
						claimed = true
						break
					}
				}
				if !claimed {
					continue
				}
				d[dv] = r
				v := lo + dv
				if spec.Labels != nil {
					spec.Labels[v] = spec.Label
				}
				if spec.Visit != nil {
					spec.Visit(property.Index32(v), r)
				}
				nextBits.Set(v)
				p++
			}
			if p != 0 {
				produced.Add(p)
			}
		})
		awake := produced.Load()
		st.Reached += awake
		if awake > 0 {
			st.Depth = r
		}
		st.PullRounds++
		*round = r + 1
		curBits, nextBits = nextBits, curBits
		if awake == 0 {
			cur.Reset()
			return
		}
		if awake < int64(n)/Beta {
			break
		}
	}
	// Sparsify the surviving frontier back into push mode, through the
	// engine's scratch slice so each pull exit reuses one buffer instead
	// of allocating a fresh sparse list.
	cur.Reset()
	e.sparse = curBits.AppendSet(e.sparse[:0])
	for _, v := range e.sparse {
		cur.Push(v)
	}
}
