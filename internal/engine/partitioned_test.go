package engine

import (
	"math"
	"testing"

	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/order"
	"github.com/graphbig/graphbig-go/internal/property"
)

// partView builds a k-way partitioned view of g under the cluster order.
func partView(g *property.Graph, k int) *property.View {
	return g.ViewWith(property.ViewOpts{
		Order:      order.Cluster,
		Partitions: k,
		Workers:    4,
	})
}

func TestPartitionedChainLevels(t *testing.T) {
	// A 10-vertex path cut into 3 partitions forces the wave through two
	// boundary exchanges per direction; levels must still be exact.
	g := chain(10)
	vw := partView(g, 3)
	for _, workers := range []int{1, 4} {
		e := New(g, vw, workers)
		dist := newDist(e.N())
		src := vw.IndexOf(property.VertexID(0))
		dist[src] = 0
		st := e.Traverse(&Spec{Dist: dist}, src)
		if st.Reached != 10 {
			t.Errorf("workers=%d: Reached = %d, want 10", workers, st.Reached)
		}
		if st.Depth != 9 {
			t.Errorf("workers=%d: Depth = %d, want 9", workers, st.Depth)
		}
		if st.Supersteps < 2 {
			t.Errorf("workers=%d: Supersteps = %d, want >= 2 on a cut path", workers, st.Supersteps)
		}
		if st.BoundarySent == 0 {
			t.Errorf("workers=%d: BoundarySent = 0, want boundary traffic on a cut path", workers)
		}
		for id := 0; id < 10; id++ {
			i := vw.IndexOf(property.VertexID(id))
			if dist[i] != int32(id) {
				t.Errorf("workers=%d: dist[id %d] = %d, want %d", workers, id, dist[i], id)
			}
		}
	}
}

// TestPartitionedMatchesFlat differential-tests the partitioned engine
// against the flat engine per vertex on generated graphs across partition
// counts, including k values that do not divide the vertex count.
func TestPartitionedMatchesFlat(t *testing.T) {
	for _, n := range []int{50, 500, 2000} {
		g := gen.LDBC(n, 7, 0)
		flatView := g.ViewWith(property.ViewOpts{Order: order.Cluster, Workers: 4})
		eFlat := New(g, flatView, 4)
		want := newDist(eFlat.N())
		src := int32(0)
		want[src] = 0
		wst := eFlat.Traverse(&Spec{Dist: want}, src)

		for _, k := range []int{1, 2, 3, 5, 8} {
			vw := partView(g, k)
			e := New(g, vw, 4)
			got := newDist(e.N())
			got[src] = 0
			gst := e.Traverse(&Spec{Dist: got}, src)
			// Cluster ordering is deterministic, so flatView and vw share
			// the same index space and dist arrays compare directly.
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: dist[%d] = %d, flat %d", n, k, i, got[i], want[i])
				}
			}
			if gst.Reached != wst.Reached || gst.Depth != wst.Depth {
				t.Errorf("n=%d k=%d: stats %+v, flat %+v", n, k, gst, wst)
			}
			if k == 1 && gst.BoundarySent != 0 {
				t.Errorf("n=%d k=1: BoundarySent = %d, want 0", n, gst.BoundarySent)
			}
			// Between traversals every exchange box must be drained —
			// the Mailboxes debug assertion backing the phase contract.
			if err := e.prt.mail.Validate(true); err != nil {
				t.Errorf("n=%d k=%d: %v", n, k, err)
			}
		}
	}
}

// TestPartitionedLabels checks component labeling (the CComp pattern:
// repeated traversals over one Dist array) under partitioned execution.
func TestPartitionedLabels(t *testing.T) {
	// Two disjoint chains.
	g := property.New(property.Options{})
	for i := 0; i < 12; i++ {
		g.AddVertex(property.VertexID(i))
	}
	for i := 0; i < 5; i++ {
		if err := g.AddEdge(property.VertexID(i), property.VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 6; i < 11; i++ {
		if err := g.AddEdge(property.VertexID(i), property.VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	vw := partView(g, 4)
	e := New(g, vw, 4)
	dist := newDist(e.N())
	labels := make([]int32, e.N())
	for i := range labels {
		labels[i] = -1
	}
	comps := 0
	for s := 0; s < e.N(); s++ {
		if dist[s] >= 0 {
			continue
		}
		dist[s] = 0
		labels[s] = int32(s)
		e.Traverse(&Spec{Dist: dist, Label: int32(s), Labels: labels}, int32(s))
		comps++
	}
	if comps != 2 {
		t.Fatalf("found %d components, want 2", comps)
	}
	for i := range labels {
		if labels[i] < 0 {
			t.Errorf("vertex %d unlabeled", i)
		}
	}
	// All vertices of one original chain share a label.
	same := func(ids []int) {
		t.Helper()
		first := labels[vw.IndexOf(property.VertexID(ids[0]))]
		for _, id := range ids[1:] {
			if l := labels[vw.IndexOf(property.VertexID(id))]; l != first {
				t.Errorf("vertex %d label %d, want %d", id, l, first)
			}
		}
	}
	same([]int{0, 1, 2, 3, 4, 5})
	same([]int{6, 7, 8, 9, 10, 11})
}

// TestPartitionedSSSPMatchesBellmanFord differential-tests the
// partitioned delta-stepping kernel against an exhaustive Bellman-Ford
// sweep, bit-for-bit (both compute min over the same left-to-right float
// path sums).
func TestPartitionedSSSPMatchesBellmanFord(t *testing.T) {
	for _, n := range []int{60, 800} {
		g := gen.LDBC(n, 11, 0)
		for _, k := range []int{1, 2, 3, 5, 8} {
			vw := partView(g, k)
			e := New(g, vw, 4)
			inf := math.Inf(1)
			dist := make([]float64, e.N())
			for i := range dist {
				dist[i] = inf
			}
			src := int32(0)
			dist[src] = 0
			st := e.PartitionedSSSP(dist, 10, src)

			want := make([]float64, e.N())
			for i := range want {
				want[i] = inf
			}
			want[src] = 0
			for changed := true; changed; {
				changed = false
				for u := int32(0); int(u) < e.N(); u++ {
					du := want[u]
					if math.IsInf(du, 1) {
						continue
					}
					adj := vw.Adj(u)
					wts := vw.AdjW(u)
					for j, v := range adj {
						if nd := du + wts[j]; nd < want[v] {
							want[v] = nd
							changed = true
						}
					}
				}
			}
			for i := range want {
				if dist[i] != want[i] {
					t.Fatalf("n=%d k=%d: dist[%d] = %v, want %v", n, k, i, dist[i], want[i])
				}
			}
			if k == 1 && st.BoundarySent != 0 {
				t.Errorf("n=%d k=1: BoundarySent = %d, want 0", n, st.BoundarySent)
			}
			if st.Relaxed == 0 {
				t.Errorf("n=%d k=%d: no relaxations recorded", n, k)
			}
		}
	}
}

// TestPartitionedFallbacks pins the dispatch rule: Visit callbacks cannot
// run partitioned (the label-correcting loop would revisit), and a view
// without a plan never reports partitioned stats.
func TestPartitionedFallbacks(t *testing.T) {
	g := chain(20)
	vw := partView(g, 4)
	e := New(g, vw, 2)
	visits := make([]int, e.N())
	dist := newDist(e.N())
	src := vw.IndexOf(property.VertexID(0))
	dist[src] = 0
	st := e.Traverse(&Spec{Dist: dist, Visit: func(v, round int32) { visits[v]++ }}, src)
	if st.Supersteps != 0 || st.BoundarySent != 0 {
		t.Errorf("Visit spec ran partitioned: %+v", st)
	}
	for i, c := range visits {
		if i == int(src) {
			if c != 0 {
				t.Errorf("source visited %d times", c)
			}
			continue
		}
		if c != 1 {
			t.Errorf("vertex %d visited %d times, want exactly 1", i, c)
		}
	}

	flat := g.View()
	ef := New(g, flat, 2)
	d2 := newDist(ef.N())
	d2[0] = 0
	if st := ef.Traverse(&Spec{Dist: d2}, 0); st.Supersteps != 0 {
		t.Errorf("plan-less view ran partitioned: %+v", st)
	}
}
