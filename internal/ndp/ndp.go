// Package ndp models a near-data-processing platform — the paper's
// conclusion names NDP units as the suite's next target ("we will also
// extend GraphBIG to other platforms, such as near-data processing (NDP)
// units"). The model follows the HMC-style proposals the paper cites [5]:
// simple in-order cores placed at the memory vaults, with
//
//   - vault-local DRAM access an order of magnitude cheaper than a host
//     LLC miss (no off-chip round trip),
//   - only a small private cache (no L2/L3 — capacity lives in DRAM),
//   - physical addressing (no TLB), and
//   - a narrow issue width and lower clock than a host core.
//
// An ndp.Profile consumes the same mem.Tracker event stream as
// perfmon.Profile, so one instrumented workload run can be costed on both
// machines simultaneously (mem.Multi); the host-vs-NDP comparison is the
// "ext01" experiment. Graph computing's extreme LLC miss rates (Fig 7) are
// exactly the behaviour NDP proposals target, and the model shows the
// CompStruct workloads gaining the most.
package ndp

import (
	"github.com/graphbig/graphbig-go/internal/cachesim"
	"github.com/graphbig/graphbig-go/internal/mem"
)

// Config describes the NDP machine.
type Config struct {
	// Cache is the per-unit private cache (32 KiB scratch-like).
	Cache cachesim.Config
	// VaultLatency is the cycle cost of a cache miss into the local vault.
	VaultLatency int
	// RemoteVaultLatency applies to accesses that cross vaults; the vault
	// of an address is its high bits, and VaultBits picks how many.
	RemoteVaultLatency int
	VaultBytes         uint64
	// IssueWidth is instructions retired per cycle (in-order, narrow).
	IssueWidth int
	// BranchMissPenalty is small: shallow pipelines.
	BranchMissPenalty int
	// ClockRatio scales NDP cycles into host-clock cycles for comparison
	// (an NDP core at 1 GHz vs a 2.4 GHz host has ratio 2.4).
	ClockRatio float64
	// MLP is the outstanding-miss overlap (small: in-order cores).
	MLP float64
	// Units is the number of vault-attached units working in parallel —
	// the source of NDP's advantage (one weak core never beats a host
	// core on latency; sixteen of them beside sixteen vaults do).
	Units int
	// UnitEfficiency discounts the vault-parallel scaling for partition
	// imbalance and cross-vault synchronization.
	UnitEfficiency float64
}

// DefaultConfig models an HMC-generation NDP unit.
func DefaultConfig() Config {
	return Config{
		Cache:              cachesim.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		VaultLatency:       24,
		RemoteVaultLatency: 80,
		VaultBytes:         256 << 20,
		IssueWidth:         1,
		BranchMissPenalty:  4,
		ClockRatio:         2.4,
		MLP:                1.5,
		Units:              16,
		UnitEfficiency:     0.5,
	}
}

// Profile implements mem.Tracker over the NDP model.
type Profile struct {
	cfg   Config
	cache *cachesim.Cache
	bp    *gshareLite

	insts     uint64
	local     uint64
	remote    uint64
	lastVault uint64
}

// NewProfile returns an NDP profile.
func NewProfile(cfg Config) *Profile {
	return &Profile{
		cfg:   cfg,
		cache: cachesim.New(cfg.Cache),
		bp:    newGshareLite(12),
	}
}

func (p *Profile) access(addr uint64, size uint32) {
	first := addr / 64
	last := (addr + uint64(size) - 1) / 64
	for l := first; l <= last; l++ {
		if p.cache.AccessLine(l) {
			continue
		}
		// The unit follows its data: a miss into the vault it touched
		// last is vault-local; hopping vaults pays the crossbar.
		vault := (l * 64) / p.cfg.VaultBytes
		if vault == p.lastVault {
			p.local++
		} else {
			p.remote++
			p.lastVault = vault
		}
	}
}

// Load implements mem.Tracker.
func (p *Profile) Load(addr uint64, size uint32) {
	p.insts++
	p.access(addr, size)
}

// Store implements mem.Tracker.
func (p *Profile) Store(addr uint64, size uint32) {
	p.insts++
	p.access(addr, size)
}

// Inst implements mem.Tracker.
func (p *Profile) Inst(n uint64) { p.insts += n }

// Branch implements mem.Tracker.
func (p *Profile) Branch(site uint32, taken bool) {
	p.insts++
	p.bp.predict(site, taken)
}

// Enter implements mem.Tracker (class split is not used by the NDP model).
func (p *Profile) Enter(mem.Class) {}

// Exit implements mem.Tracker.
func (p *Profile) Exit() {}

// Metrics is the NDP cost report.
type Metrics struct {
	Insts      uint64
	CacheHit   float64
	LocalMiss  uint64
	RemoteMiss uint64
	// Cycles is in single-unit NDP-core cycles; HostCycles converts by
	// ClockRatio so it compares against perfmon.Metrics.TotalCycles, and
	// HostCyclesParallel additionally spreads the work over the vault
	// units (Units x UnitEfficiency) — the deployment the proposals
	// describe and the figure the ext01 experiment compares.
	Cycles             uint64
	HostCycles         uint64
	HostCyclesParallel uint64
}

// Report computes the cycle model.
func (p *Profile) Report() Metrics {
	cfg := p.cfg
	retire := float64(p.insts) / float64(cfg.IssueWidth)
	memStall := (float64(p.local)*float64(cfg.VaultLatency) +
		float64(p.remote)*float64(cfg.RemoteVaultLatency)) / cfg.MLP
	badspec := float64(p.bp.misses) * float64(cfg.BranchMissPenalty)
	cycles := retire + memStall + badspec
	scale := float64(cfg.Units) * cfg.UnitEfficiency
	if scale < 1 {
		scale = 1
	}
	return Metrics{
		Insts:              p.insts,
		CacheHit:           p.cache.HitRate(),
		LocalMiss:          p.local,
		RemoteMiss:         p.remote,
		Cycles:             uint64(cycles),
		HostCycles:         uint64(cycles * cfg.ClockRatio),
		HostCyclesParallel: uint64(cycles * cfg.ClockRatio / scale),
	}
}

// gshareLite is a small two-bit gshare for the shallow NDP pipeline.
type gshareLite struct {
	table   []uint8
	mask    uint32
	history uint32
	misses  uint64
}

func newGshareLite(bits int) *gshareLite {
	return &gshareLite{table: make([]uint8, 1<<bits), mask: uint32(1<<bits - 1)}
}

func (g *gshareLite) predict(site uint32, taken bool) {
	idx := (site*2654435761 ^ g.history) & g.mask
	ctr := g.table[idx]
	if (ctr >= 2) != taken {
		g.misses++
	}
	if taken {
		if ctr < 3 {
			g.table[idx]++
		}
	} else if ctr > 0 {
		g.table[idx]--
	}
	g.history = (g.history<<1 | b2u(taken)) & 0xfff
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
