package ndp

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/mem"
)

func TestNDPBeatsHostLatencyOnRandomAccess(t *testing.T) {
	p := NewProfile(DefaultConfig())
	x := uint64(9)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1
		p.Load(1<<20+(x>>16)%(128<<20), 8)
		p.Inst(2)
	}
	m := p.Report()
	if m.Cycles == 0 || m.Insts == 0 {
		t.Fatal("empty report")
	}
	// Random access over 128MB: almost everything misses the 32KB cache
	// but stays vault-local (one 256MB vault), so the per-miss cost is
	// VaultLatency/MLP = 16 host-side would be ~90.
	if m.CacheHit > 0.3 {
		t.Errorf("cache hit = %v, want thrashing", m.CacheHit)
	}
	if m.RemoteMiss > m.LocalMiss {
		t.Errorf("remote misses %d exceed local %d within one vault", m.RemoteMiss, m.LocalMiss)
	}
}

func TestVaultCrossing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VaultBytes = 1 << 20
	p := NewProfile(cfg)
	// Alternate between two vaults: every miss hops.
	for i := 0; i < 100; i++ {
		p.Load(uint64(i%2)*(1<<20)+uint64(i)*64, 8)
	}
	m := p.Report()
	if m.RemoteMiss < m.LocalMiss {
		t.Errorf("vault ping-pong should be remote-dominated: %d local %d remote",
			m.LocalMiss, m.RemoteMiss)
	}
}

func TestHostCyclesScaled(t *testing.T) {
	p := NewProfile(DefaultConfig())
	p.Inst(2400)
	m := p.Report()
	if m.HostCycles <= m.Cycles {
		t.Errorf("host cycles %d should exceed NDP cycles %d (slower clock)",
			m.HostCycles, m.Cycles)
	}
}

func TestTrackerInterface(t *testing.T) {
	var tr mem.Tracker = NewProfile(DefaultConfig())
	tr.Enter(mem.ClassFramework)
	tr.Load(4096, 8)
	tr.Store(4096, 8)
	tr.Branch(1, true)
	tr.Exit()
	m := tr.(*Profile).Report()
	if m.Insts != 3 {
		t.Errorf("insts = %d, want 3", m.Insts)
	}
}
