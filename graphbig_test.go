package graphbig_test

import (
	"testing"

	graphbig "github.com/graphbig/graphbig-go"
)

func TestFacadeQuickstart(t *testing.T) {
	g := graphbig.New()
	for i := graphbig.VertexID(0); i < 4; i++ {
		g.AddVertex(i)
	}
	for _, e := range [][2]graphbig.VertexID{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := graphbig.Run("BFS", g, graphbig.Options{Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != 4 {
		t.Errorf("visited = %d", res.Visited)
	}
	if _, err := graphbig.Run("NoSuch", g, graphbig.Options{}); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestFacadeDirected(t *testing.T) {
	g := graphbig.NewDirected()
	g.AddVertex(1)
	g.AddVertex(2)
	if err := g.AddEdge(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if !g.Directed() {
		t.Error("NewDirected not directed")
	}
	if _, err := g.DeleteVertex(2); err != nil {
		t.Errorf("directed delete should work with in-tracking: %v", err)
	}
}

func TestFacadeDataset(t *testing.T) {
	g := graphbig.Dataset("ca-road", 0.001, 1)
	if g.VertexCount() < 64 {
		t.Errorf("dataset too small: %d", g.VertexCount())
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown dataset should panic")
		}
	}()
	graphbig.Dataset("nope", 1, 1)
}

func TestFacadeWorkloadsAndSession(t *testing.T) {
	if len(graphbig.Workloads()) != 13 {
		t.Errorf("workloads = %d", len(graphbig.Workloads()))
	}
	s := graphbig.NewSession(0.001, 7)
	if s == nil || s.Cfg.Scale != 0.001 {
		t.Error("session config not applied")
	}
}
