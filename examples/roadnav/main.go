// Road-network navigation — the man-made technology network use case:
// compute shortest driving routes on a CA-road-style lattice with
// Dijkstra (SPath), and verify the network's regular topology with a
// degree profile and k-core decomposition (road networks peel at k≈2-3).
package main

import (
	"fmt"
	"log"
	"math"

	graphbig "github.com/graphbig/graphbig-go"
)

func main() {
	g := graphbig.Dataset("ca-road", 0.01, 11)
	fmt.Printf("road network: %d intersections, %d road segments\n",
		g.VertexCount(), g.EdgeCount())

	// Route from intersection 0: weights are segment lengths.
	res, err := graphbig.Run("SPath", g, graphbig.Options{Source: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reachable from depot: %d intersections\n", res.Visited)

	dist := g.Schema().MustField("spath.dist")
	var far *graphbig.Vertex
	farDist := 0.0
	sum, n := 0.0, 0
	g.ForEachVertex(func(v *graphbig.Vertex) {
		d := v.Prop(dist)
		if math.IsInf(d, 1) {
			return
		}
		sum += d
		n++
		if d > farDist {
			farDist, far = d, v
		}
	})
	fmt.Printf("average route cost: %.1f; farthest intersection %d at cost %.0f\n",
		sum/float64(n), far.ID, farDist)

	// Regular topology check: road networks have tiny max degree and core.
	kc, err := graphbig.Run("kCore", g, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	maxDeg := 0
	g.ForEachVertex(func(v *graphbig.Vertex) {
		if v.OutDegree() > maxDeg {
			maxDeg = v.OutDegree()
		}
	})
	fmt.Printf("max intersection degree: %d, max core: %g (regular man-made topology)\n",
		maxDeg, kc.Stats["max_core"])
}
