// Social-network analysis — the paper's headline use-case category: find
// the influencers of an LDBC-style social graph by degree and betweenness
// centrality, then compare the two rankings. Exercises DCentr, BCentr and
// CComp on a generated social dataset.
package main

import (
	"fmt"
	"log"
	"sort"

	graphbig "github.com/graphbig/graphbig-go"
)

func main() {
	g := graphbig.Dataset("ldbc", 0.005, 7)
	fmt.Printf("social graph: %d members, %d friendships\n", g.VertexCount(), g.EdgeCount())

	cc, err := graphbig.Run("CComp", g, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communities (components): %g, largest %g members\n",
		cc.Stats["components"], cc.Stats["largest"])

	if _, err := graphbig.Run("DCentr", g, graphbig.Options{}); err != nil {
		log.Fatal(err)
	}
	if _, err := graphbig.Run("BCentr", g, graphbig.Options{Samples: 16}); err != nil {
		log.Fatal(err)
	}

	dc := g.Schema().MustField("dcentr")
	bc := g.Schema().MustField("bcentr")
	type member struct {
		id     graphbig.VertexID
		dc, bc float64
	}
	var members []member
	g.ForEachVertex(func(v *graphbig.Vertex) {
		members = append(members, member{v.ID, v.Prop(dc), v.Prop(bc)})
	})

	sort.Slice(members, func(i, j int) bool { return members[i].dc > members[j].dc })
	fmt.Println("top 5 by degree centrality:")
	for _, m := range members[:5] {
		fmt.Printf("  member %-8d degree=%.4f betweenness=%.1f\n", m.id, m.dc, m.bc)
	}

	sort.Slice(members, func(i, j int) bool { return members[i].bc > members[j].bc })
	fmt.Println("top 5 by betweenness centrality (bridges between communities):")
	for _, m := range members[:5] {
		fmt.Printf("  member %-8d betweenness=%.1f degree=%.4f\n", m.id, m.bc, m.dc)
	}
}
