// Streaming dynamic graphs — the CompDyn computation type: construct a
// graph through framework primitives (GCons), apply a stream of deletions
// (GUp), morph a DAG into its undirected moral graph (TMorph), and watch
// the structure evolve. This is the workload mix prior benchmarks omit
// and GraphBIG adds (paper §2, Table 3).
package main

import (
	"fmt"
	"log"

	graphbig "github.com/graphbig/graphbig-go"
)

func main() {
	// A gene-interaction network as the streaming substrate.
	g := graphbig.Dataset("watson-gene", 0.01, 5)
	fmt.Printf("t0: %d vertices, %d edges\n", g.VertexCount(), g.EdgeCount())

	// Reconstruct it through the framework (GCons) — the ingest phase of a
	// streaming pipeline.
	cons, err := graphbig.Run("GCons", g, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingest: constructed %g vertices / %g directed records\n",
		cons.Stats["vertices"], cons.Stats["edges"])

	// Apply a deletion stream (GUp): entities retracted from the network.
	for batch := 1; batch <= 3; batch++ {
		up, err := graphbig.Run("GUp", g, graphbig.Options{Samples: g.VertexCount() / 50, Seed: int64(batch)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t%d: deleted %d vertices (%g edges), now %d vertices / %d edges\n",
			batch, up.Visited, up.Stats["removed_edges"], g.VertexCount(), g.EdgeCount())
	}

	// Morph the surviving structure into a moral graph (TMorph) — the
	// preprocessing step of exact Bayesian inference.
	tm, err := graphbig.Run("TMorph", g, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("moralized: %g moral edges (%g parent marriages)\n",
		tm.Stats["moral_edges"], tm.Stats["married_pairs"])
}
