// Knowledge-repository mining — the information-network use case behind
// IBM's document recommendation system: on a bipartite user-document
// access graph, find the dense collaboration core (kCore), the hottest
// documents (DCentr) and co-access document recommendations (2-hop walk
// through framework primitives).
package main

import (
	"fmt"
	"log"
	"sort"

	graphbig "github.com/graphbig/graphbig-go"
)

func main() {
	g := graphbig.Dataset("knowledge", 0.2, 3)
	kind := g.Schema().MustField("kind") // 1 = document, 0 = user
	docs, users := 0, 0
	g.ForEachVertex(func(v *graphbig.Vertex) {
		if v.Prop(kind) == 1 {
			docs++
		} else {
			users++
		}
	})
	fmt.Printf("knowledge repo: %d users, %d documents, %d accesses\n",
		users, docs, g.EdgeCount())

	// Hot documents by access degree.
	if _, err := graphbig.Run("DCentr", g, graphbig.Options{}); err != nil {
		log.Fatal(err)
	}
	dc := g.Schema().MustField("dcentr")
	type doc struct {
		id graphbig.VertexID
		c  float64
	}
	var hot []doc
	g.ForEachVertex(func(v *graphbig.Vertex) {
		if v.Prop(kind) == 1 {
			hot = append(hot, doc{v.ID, v.Prop(dc)})
		}
	})
	sort.Slice(hot, func(i, j int) bool { return hot[i].c > hot[j].c })
	fmt.Println("top 3 documents by access centrality:")
	for _, d := range hot[:3] {
		fmt.Printf("  doc %-6d centrality %.4f\n", d.id, d.c)
	}

	// Recommend for the first user: documents co-accessed by readers of
	// the user's own documents (a 2-hop traversal through primitives).
	var user *graphbig.Vertex
	g.ForEachVertex(func(v *graphbig.Vertex) {
		if user == nil && v.Prop(kind) == 0 && v.OutDegree() > 0 {
			user = v
		}
	})
	scores := map[graphbig.VertexID]int{}
	own := map[graphbig.VertexID]bool{}
	g.Neighbors(user, func(_ int, e *graphbig.Edge) bool {
		own[e.To] = true
		return true
	})
	g.Neighbors(user, func(_ int, e *graphbig.Edge) bool {
		d := g.FindVertex(e.To)
		g.Neighbors(d, func(_ int, e2 *graphbig.Edge) bool {
			reader := g.FindVertex(e2.To)
			g.Neighbors(reader, func(_ int, e3 *graphbig.Edge) bool {
				if !own[e3.To] {
					scores[e3.To]++
				}
				return true
			})
			return true
		})
		return true
	})
	best, bestScore := graphbig.VertexID(0), 0
	for id, s := range scores {
		if s > bestScore {
			best, bestScore = id, s
		}
	}
	fmt.Printf("recommendation for user %d: doc %d (co-access score %d)\n",
		user.ID, best, bestScore)

	// Dense collaboration core of the repository.
	kc, err := graphbig.Run("kCore", g, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("densest collaboration core: k = %g\n", kc.Stats["max_core"])
}
