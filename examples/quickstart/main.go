// Quickstart: build a small property graph through the framework
// primitives, run a few workloads, and read results back from vertex
// properties — the minimal tour of the public API.
package main

import (
	"fmt"
	"log"

	graphbig "github.com/graphbig/graphbig-go"
)

func main() {
	// A toy collaboration network: 0-1-2 triangle with a tail to 3.
	g := graphbig.New()
	for id := graphbig.VertexID(0); id < 4; id++ {
		g.AddVertex(id)
	}
	for _, e := range [][3]int{{0, 1, 1}, {1, 2, 2}, {0, 2, 2}, {2, 3, 5}} {
		if err := g.AddEdge(graphbig.VertexID(e[0]), graphbig.VertexID(e[1]), float64(e[2])); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.VertexCount(), g.EdgeCount())

	// Traverse.
	bfs, err := graphbig.Run("BFS", g, graphbig.Options{Source: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BFS reached %d vertices, depth %v\n", bfs.Visited, bfs.Stats["depth"])

	// Shortest paths; distances land in the "spath.dist" property.
	if _, err = graphbig.Run("SPath", g, graphbig.Options{Source: 0}); err != nil {
		log.Fatal(err)
	}
	dist := g.Schema().MustField("spath.dist")
	for id := graphbig.VertexID(0); id < 4; id++ {
		v := g.FindVertex(id)
		fmt.Printf("  dist(0 -> %d) = %g\n", id, g.GetProp(v, dist))
	}

	// Count triangles.
	tc, err := graphbig.Run("TC", g, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triangles: %g\n", tc.Stats["triangles"])

	// Generate a real dataset and decompose it.
	ldbc := graphbig.Dataset("ldbc", 0.002, 42)
	kc, err := graphbig.Run("kCore", ldbc, graphbig.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LDBC-%dK: max core = %g\n", ldbc.VertexCount()/1000, kc.Stats["max_core"])
}
