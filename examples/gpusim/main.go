// GPU divergence study — drive the SIMT simulator directly: convert a
// property graph to CSR (the paper's populate step), run GPU workloads on
// the simulated Tesla-K40-class device, and compare branch/memory
// divergence between a thread-centric and an edge-centric kernel — the
// design axis behind the paper's Figures 10 and 13.
package main

import (
	"fmt"

	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/gpuwl"
	"github.com/graphbig/graphbig-go/internal/simt"
)

func main() {
	for _, dsName := range []string{"ldbc", "ca-road"} {
		d, err := gen.ByName(dsName)
		if err != nil {
			panic(err)
		}
		g := d.Generate(0.004, 42, 0)
		vw := g.View()
		c := csr.FromProperty(g, vw)
		fmt.Printf("\n%s: %d vertices, %d edge records (CSR)\n", dsName, c.N, c.NumEdges())
		fmt.Printf("%-8s %-14s %6s %6s %8s %10s\n", "kernel", "model", "BDR", "MDR", "IPC", "read GB/s")
		for _, wl := range gpuwl.All() {
			dev := simt.NewDevice(simt.KeplerConfig())
			res := wl.Run(dev, c)
			st := dev.Stats()
			model := "thread-centric"
			if wl.Name == "CComp" || wl.Name == "TC" {
				model = "edge-centric"
			}
			fmt.Printf("%-8s %-14s %6.3f %6.3f %8.3f %10.2f   (value=%g)\n",
				res.Name, model, st.BDR(), st.MDR(), st.IPC(), dev.ReadThroughputGBs(), res.Value)
		}
	}
	fmt.Println("\nedge-centric kernels (CComp, TC) hold BDR low regardless of degree skew;")
	fmt.Println("thread-centric kernels inherit the input's degree variance as divergence.")
}
