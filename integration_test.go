package graphbig_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"github.com/graphbig/graphbig-go/internal/core"
	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/loader"
	"github.com/graphbig/graphbig-go/internal/perfmon"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/trace"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

// TestPipelineGenerateSaveLoadRunTrace exercises the full toolchain the
// way a user would: generate a dataset, persist it, reload it, run the
// whole CPU suite on the reloaded copy, then record one workload's trace
// and verify the replayed machine metrics match a live profile.
func TestPipelineGenerateSaveLoadRunTrace(t *testing.T) {
	// 1. Generate and persist.
	g := gen.LDBC(1200, 77, 0)
	path := filepath.Join(t.TempDir(), "ldbc.el")
	if err := loader.Save(path, g); err != nil {
		t.Fatal(err)
	}

	// 2. Reload; counts and degrees must survive.
	r, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.VertexCount() != g.VertexCount() || r.EdgeCount() != g.EdgeCount() {
		t.Fatalf("reload mismatch: %d/%d vs %d/%d",
			r.VertexCount(), r.EdgeCount(), g.VertexCount(), g.EdgeCount())
	}
	if err := property.Validate(r); err != nil {
		t.Fatal(err)
	}

	// 3. Run every graph-input CPU workload on the reloaded graph and pin
	// its result against the original.
	for _, wl := range core.Workloads {
		if wl.NeedsBayes || wl.Mutates {
			continue
		}
		resG, err := wl.Run(&core.RunContext{Graph: g, Opt: workloads.Options{Samples: 4}})
		if err != nil {
			t.Fatalf("%s on original: %v", wl.Name, err)
		}
		resR, err := wl.Run(&core.RunContext{Graph: r, Opt: workloads.Options{Samples: 4}})
		if err != nil {
			t.Fatalf("%s on reloaded: %v", wl.Name, err)
		}
		if resG.Visited != resR.Visited {
			t.Errorf("%s: visited %d (original) vs %d (reloaded)",
				wl.Name, resG.Visited, resR.Visited)
		}
	}

	// 4. Record a trace of kCore, replay it, and compare against a live
	// profile. Both measured runs start from a freshly loaded graph so
	// their simulated address layouts are identical (a reused graph's
	// arena has advanced past the first run's allocations).
	rec1, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	vw := rec1.View()
	var buf bytes.Buffer
	rec, err := trace.NewRecorder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec1.SetTracker(rec)
	if _, err := workloads.KCore(rec1, workloads.Options{View: vw}); err != nil {
		t.Fatal(err)
	}
	rec1.SetTracker(nil)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}

	live1, err := loader.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	vw2 := live1.View()
	live := perfmon.NewProfile(perfmon.DefaultConfig())
	live1.SetTracker(live)
	if _, err := workloads.KCore(live1, workloads.Options{View: vw2}); err != nil {
		t.Fatal(err)
	}
	live1.SetTracker(nil)

	replayed := perfmon.NewProfile(perfmon.DefaultConfig())
	if _, err := trace.Replay(&buf, replayed); err != nil {
		t.Fatal(err)
	}
	if live.Report().Insts != replayed.Report().Insts {
		t.Errorf("trace replay insts %d != live %d",
			replayed.Report().Insts, live.Report().Insts)
	}
	if live.Report().TotalCycles != replayed.Report().TotalCycles {
		t.Errorf("trace replay cycles %d != live %d",
			replayed.Report().TotalCycles, live.Report().TotalCycles)
	}
}

// TestSuiteDeterminism runs the whole CPU suite twice on independently
// generated identical datasets and requires byte-identical results — the
// reproducibility property every benchmark suite needs.
func TestSuiteDeterminism(t *testing.T) {
	run := func() map[string][2]float64 {
		g := gen.Gene(1500, 31, 0)
		out := map[string][2]float64{}
		for _, wl := range core.Workloads {
			if wl.NeedsBayes {
				continue
			}
			in := g
			if wl.Mutates {
				in = property.Clone(g)
			}
			res, err := wl.Run(&core.RunContext{Graph: in, Opt: workloads.Options{Samples: 4, Seed: 5}})
			if err != nil {
				t.Fatalf("%s: %v", wl.Name, err)
			}
			out[wl.Name] = [2]float64{float64(res.Visited), res.Checksum}
		}
		return out
	}
	a, b := run(), run()
	for name, va := range a {
		if b[name] != va {
			t.Errorf("%s not deterministic: %v vs %v", name, va, b[name])
		}
	}
}
