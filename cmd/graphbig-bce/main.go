// Command graphbig-bce is the ground truth behind the boundscheck
// analyzer: it compiles the hot packages with the compiler's bounds
// check debugging enabled (-d=ssa/check_bce/debug=1), counts the
// IsInBounds / IsSliceInBounds checks the prove pass RETAINED per
// file, and ratchets the counts against results/bce_baseline.json.
//
// The static analyzer reasons about what should be provable; this tool
// measures what the compiler actually eliminated. The two disagree at
// the margins (prove is flow-sensitive per SSA value, the analyzer is
// interprocedural over summaries), so the contract is a ratchet, not
// equality: a change that grows a file's retained-check count fails CI
// until the baseline is deliberately rewritten with -write.
//
// A fresh GOCACHE is used for every run: cached package builds skip
// the compiler entirely and report zero checks for untouched files,
// which would let regressions hide behind the cache.
//
// Usage:
//
//	go run ./cmd/graphbig-bce            # compare against the baseline
//	go run ./cmd/graphbig-bce -write    # rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

const module = "github.com/graphbig/graphbig-go"

// hotPkgs mirrors the boundscheck analyzer's scope: the packages whose
// inner loops pay a retained check per edge.
var hotPkgs = []string{
	"internal/engine",
	"internal/csr",
	"internal/concurrent",
	"internal/workloads",
}

type baseline struct {
	Note string `json:"note,omitempty"`
	// History records notable before/after movements of the ratchet;
	// -write preserves it.
	History []string       `json:"history,omitempty"`
	Files   map[string]int `json:"files"`
}

var foundRE = regexp.MustCompile(`^(.*\.go):\d+:\d+: Found Is(?:Slice)?InBounds$`)

func main() {
	write := flag.Bool("write", false, "rewrite the baseline with the measured counts")
	path := flag.String("baseline", "results/bce_baseline.json", "baseline file")
	flag.Parse()

	files, err := measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-bce:", err)
		os.Exit(2)
	}
	if *write {
		if err := writeBaseline(*path, files); err != nil {
			fmt.Fprintln(os.Stderr, "graphbig-bce:", err)
			os.Exit(2)
		}
		fmt.Printf("graphbig-bce: wrote %s (%d files, %d retained checks)\n",
			*path, len(files), total(files))
		return
	}
	base, err := readBaseline(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-bce:", err)
		os.Exit(2)
	}
	regressed, improved := diff(base.Files, files)
	for _, line := range regressed {
		fmt.Println(line)
	}
	for _, line := range improved {
		fmt.Println(line)
	}
	fmt.Printf("graphbig-bce: %d retained bounds checks across %d hot packages (baseline %d)\n",
		total(files), len(hotPkgs), total(base.Files))
	if len(regressed) > 0 {
		fmt.Println("graphbig-bce: bounds-check regression; eliminate the checks or rerun with -write to accept")
		os.Exit(1)
	}
	if len(improved) > 0 {
		fmt.Println("graphbig-bce: improvement — rerun with -write to ratchet the baseline down")
	}
}

// measure compiles the hot packages under a throwaway GOCACHE and
// returns retained-check counts keyed by module-relative file path.
func measure() (map[string]int, error) {
	cache, err := os.MkdirTemp("", "graphbig-bce-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cache)

	args := []string{"build"}
	for _, p := range hotPkgs {
		args = append(args, "-gcflags="+module+"/"+p+"=-d=ssa/check_bce/debug=1")
	}
	for _, p := range hotPkgs {
		args = append(args, "./"+p)
	}
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOCACHE="+cache)
	out, err := cmd.CombinedOutput()
	files := map[string]int{}
	matched := false
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		m := foundRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		matched = true
		files[relPath(m[1])]++
	}
	if err != nil && !matched {
		return nil, fmt.Errorf("go build failed: %v\n%s", err, out)
	}
	return files, nil
}

// relPath normalizes a compiler-reported filename (absolute or
// build-dir relative) to a module-relative, slash-separated path.
func relPath(name string) string {
	name = filepath.ToSlash(name)
	for _, p := range hotPkgs {
		if i := strings.Index(name, p+"/"); i >= 0 {
			return name[i:]
		}
	}
	return strings.TrimPrefix(name, "./")
}

func readBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%v (run with -write to create the baseline)", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if b.Files == nil {
		b.Files = map[string]int{}
	}
	return &b, nil
}

func writeBaseline(path string, files map[string]int) error {
	b := baseline{
		Note: "Retained bounds checks per file under -d=ssa/check_bce (go build, hot packages). " +
			"Ratcheted by cmd/graphbig-bce in CI: growth fails, reductions should be written back.",
		Files: files,
	}
	if prev, err := readBaseline(path); err == nil {
		b.History = prev.History
	}
	raw, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// diff returns regression and improvement report lines comparing
// measured counts to the baseline.
func diff(base, got map[string]int) (regressed, improved []string) {
	keys := map[string]bool{}
	for f := range base {
		keys[f] = true
	}
	for f := range got {
		keys[f] = true
	}
	sorted := make([]string, 0, len(keys))
	for f := range keys {
		sorted = append(sorted, f)
	}
	sort.Strings(sorted)
	for _, f := range sorted {
		b, g := base[f], got[f]
		switch {
		case g > b:
			regressed = append(regressed, fmt.Sprintf("REGRESSED %s: %d -> %d retained checks", f, b, g))
		case g < b:
			improved = append(improved, fmt.Sprintf("improved  %s: %d -> %d retained checks", f, b, g))
		}
	}
	return regressed, improved
}

func total(files map[string]int) int {
	n := 0
	for _, c := range files {
		n += c
	}
	return n
}
