// Command graphbig-bench regenerates the paper's tables and figures from
// the simulators and prints them as text tables (or markdown with -md).
//
// Usage:
//
//	graphbig-bench [-scale 0.02] [-seed 42] [-exp fig05] [-md] [-o out.md]
//	graphbig-bench -json [-scale 0.05]   # machine-readable perf trajectory
//
// -scale 1.0 reproduces the paper's dataset sizes (Table 7); the default
// runs a small-scale sweep in minutes. Absolute counter values are model
// outputs, not Xeon/K40 measurements — compare shapes, not magnitudes.
// -order composes a vertex reordering (internal/order) into every dataset
// view; -json measures view construction, per-ordering engine wall-clock
// and per-ordering simulated MPKI, writing results/BENCH_<scale>.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/graphbig/graphbig-go/internal/harness"
	"github.com/graphbig/graphbig-go/internal/order"
)

func main() {
	cfg := harness.DefaultConfig()
	scale := flag.Float64("scale", cfg.Scale, "fraction of paper-scale dataset sizes")
	seed := flag.Int64("seed", cfg.Seed, "generation seed")
	exp := flag.String("exp", "", "experiment id(s), comma-separated (e.g. fig05,fig07); empty = all")
	input := flag.String("input", "", "SNAP edge-list input, plain or gzipped, substituted for generated datasets")
	deltaW := flag.Float64("delta", 0, "SPathDelta bucket width override in native benches (0 = sampled heuristic)")
	ordering := flag.String("order", "", "vertex ordering for dataset views: "+order.FlagUsage())
	partitions := flag.Int("partitions", 0, "k-way partition plan composed into dataset views; 0 = flat")
	jsonOut := flag.Bool("json", false, "measure the benchmark trajectory and write results/BENCH_<scale>.json")
	jsonDir := flag.String("json-dir", "results", "directory for -json output")
	md := flag.Bool("md", false, "emit markdown tables")
	csvOut := flag.Bool("csv", false, "emit CSV rows")
	chart := flag.Bool("chart", false, "append an ASCII bar chart of each report's last column")
	out := flag.String("o", "", "write output to file instead of stdout")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Order = *ordering
	cfg.Partitions = *partitions
	cfg.Input = *input
	cfg.Delta = *deltaW
	s := harness.NewSession(cfg)

	if *jsonOut {
		recs, err := harness.BenchRecords(s)
		if err != nil {
			fatal(err)
		}
		path := harness.BenchPath(*jsonDir, cfg.Scale)
		if err := harness.WriteBenchJSON(path, harness.NewBenchMeta(cfg), recs); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", len(recs), path)
		return
	}

	var reports []harness.Report
	start := time.Now()
	if *exp != "" {
		for _, id := range strings.Split(*exp, ",") {
			e, err := harness.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			r, err := e.Run(s)
			if err != nil {
				fatal(err)
			}
			reports = append(reports, r)
		}
	} else {
		var err error
		reports, err = harness.RunAll(s)
		if err != nil {
			fatal(err)
		}
	}

	var b strings.Builder
	switch {
	case *csvOut:
		for _, r := range reports {
			b.WriteString(r.CSV())
			b.WriteByte('\n')
		}
	case *md:
		fmt.Fprintf(&b, "# GraphBIG-Go experiment results\n\nscale=%.3g seed=%d elapsed=%s\n\n",
			cfg.Scale, cfg.Seed, time.Since(start).Round(time.Millisecond))
		for _, r := range reports {
			b.WriteString(r.Markdown())
		}
	default:
		for _, r := range reports {
			b.WriteString(r.String())
			if *chart && len(r.Headers) > 0 {
				if c := r.Chart(len(r.Headers) - 1); c != "" {
					b.WriteByte('\n')
					b.WriteString(c)
				}
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "elapsed: %s\n", time.Since(start).Round(time.Millisecond))
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(b.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphbig-bench:", err)
	os.Exit(1)
}
