package main

import (
	"testing"

	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

// TestCompareBand pins the ratchet decision table: result drift and
// banded slowdowns fail, in-band jitter and improvements do not, and a
// bench on either side only (baseline-only or measured-only) fails.
func TestCompareBand(t *testing.T) {
	base := &baseline{
		Band: 0.40,
		Benches: map[string]benchResult{
			"fast":  {MS: 1.0, Visited: 10, Checksum: 5},
			"slow":  {MS: 100.0, Visited: 10, Checksum: 5},
			"gone":  {MS: 1.0, Visited: 10, Checksum: 5},
			"drift": {MS: 1.0, Visited: 10, Checksum: 5},
		},
	}
	got := map[string]benchResult{
		// 3x slower but under the 2ms absolute floor: tiny timings jitter.
		"fast": {MS: 2.9, Visited: 10, Checksum: 5},
		// Past the band AND the floor: a real regression.
		"slow": {MS: 160.0, Visited: 10, Checksum: 5},
		// Same wall-clock, different answer: exact failure.
		"drift": {MS: 1.0, Visited: 10, Checksum: 6},
		"new":   {MS: 1.0, Visited: 1, Checksum: 1},
	}
	lines, failed := compare(base, got)
	if !failed {
		t.Fatal("regression + drift + missing + new must fail")
	}
	want := map[string]string{
		"fast":  "ok",
		"slow":  "REGRESSED",
		"gone":  "MISSING",
		"drift": "DRIFT",
		"new":   "NEW",
	}
	for name, prefix := range want {
		found := false
		for _, l := range lines {
			if len(l) >= len(prefix) && l[:len(prefix)] == prefix &&
				containsWord(l, name) {
				found = true
			}
		}
		if !found {
			t.Errorf("no %q line for bench %q in %q", prefix, name, lines)
		}
	}

	// All in band: green.
	if _, failed := compare(base, map[string]benchResult{
		"fast":  {MS: 1.3, Visited: 10, Checksum: 5},
		"slow":  {MS: 60.0, Visited: 10, Checksum: 5}, // improvement
		"gone":  {MS: 1.0, Visited: 10, Checksum: 5},
		"drift": {MS: 1.0, Visited: 10, Checksum: 5},
	}); failed {
		t.Error("in-band timings with exact fingerprints must pass")
	}
}

func containsWord(l, w string) bool {
	for i := 0; i+len(w) <= len(l); i++ {
		if l[i:i+len(w)] == w {
			return true
		}
	}
	return false
}

// TestBellmanFordOracle checks the in-process oracle against SPathDelta
// on a handmade graph where the greedy first path is not the shortest:
// 1->2->4 costs 6, 1->3->4 costs 3.
func TestBellmanFordOracle(t *testing.T) {
	g := property.New(property.Options{Directed: true, TrackInEdges: true})
	for id := property.VertexID(1); id <= 5; id++ {
		g.AddVertex(id)
	}
	for _, e := range []struct {
		s, d property.VertexID
		w    float64
	}{{1, 2, 1}, {2, 4, 5}, {1, 3, 2}, {3, 4, 1}, {4, 5, 0.5}} {
		if err := g.AddEdge(e.s, e.d, e.w); err != nil {
			t.Fatal(err)
		}
	}
	vw := g.ViewWith(property.ViewOpts{})
	src := vw.Verts[0].ID
	want := bellmanFord(vw, vw.IndexOf(src))
	if want[4] != 3 || want[5] != 3.5 {
		t.Fatalf("oracle wrong on handmade graph: %v", want)
	}
	if want[1] != 0 {
		t.Fatalf("source distance = %v, want 0", want[1])
	}
	if _, err := workloads.SPathDelta(g, workloads.Options{Source: src, View: vw}); err != nil {
		t.Fatal(err)
	}
	got := snapshotDist(g, vw)
	for id, w := range want {
		if got[id] != w {
			t.Errorf("dist[%d] = %v, oracle %v", id, got[id], w)
		}
	}
}
