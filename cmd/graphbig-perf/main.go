// Command graphbig-perf is the wall-clock companion to the
// graphbig-bce and graphbig-alloc ratchets: it times the native engine
// benches at a tiny fixed scale (min-of-N, interleaved repetitions) and
// compares each timing against results/perf_baseline.json. A bench that
// slows past the baseline's noise band fails CI until the baseline is
// deliberately rewritten with -write.
//
// Wall-clock is machine-dependent, so the ratchet is banded rather than
// exact: a measurement only regresses when it exceeds the committed
// number by the relative band AND an absolute floor (tiny timings jitter
// by whole scheduler quanta). The committed baseline should come from
// the same class of machine that runs CI; after changing machines,
// rebase with -write.
//
// Two checks are machine-independent and always exact:
//
//  1. visited/checksum per bench must equal the committed values — a
//     perf change that alters results is a correctness bug, not a
//     regression;
//  2. SPathDelta must produce bitwise Bellman-Ford distances, flat and
//     under a partition sweep (k=1,2,4). Both kernels take minima over
//     the same left-to-right float path sums, so equality is exact,
//     not tolerance-based.
//
// Usage:
//
//	go run ./cmd/graphbig-perf          # compare against the baseline
//	go run ./cmd/graphbig-perf -write   # rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

// benchScale/benchSeed pin the measured input: LDBC at a tiny fixed
// scale, the same dataset class the BENCH trajectory leads with.
const (
	benchScale = 0.02
	benchSeed  = 42
)

// absFloorMS is the absolute component of the noise band: a bench never
// regresses on a delta smaller than this, however small the baseline.
const absFloorMS = 2.0

// benchResult is one committed measurement: the banded wall-clock plus
// the exact, machine-independent result fingerprint.
type benchResult struct {
	MS       float64 `json:"ms"`
	Visited  int64   `json:"visited"`
	Checksum float64 `json:"checksum"`
}

type baseline struct {
	Note string `json:"note,omitempty"`
	// History records notable before/after movements of the ratchet;
	// -write preserves it.
	History []string               `json:"history,omitempty"`
	Scale   float64                `json:"scale"`
	Seed    int64                  `json:"seed"`
	Repeats int                    `json:"repeats"`
	Band    float64                `json:"band"`
	Benches map[string]benchResult `json:"benches"`
}

type benchDef struct {
	name       string
	partitions int
	run        func(*property.Graph, workloads.Options) (*workloads.Result, error)
}

var benches = []benchDef{
	{"BFS@flat", 0, workloads.BFS},
	{"CComp@flat", 0, workloads.CComp},
	{"SPathDelta@flat", 0, workloads.SPathDelta},
	{"SPathDelta@part4", 4, workloads.SPathDelta},
}

func main() {
	write := flag.Bool("write", false, "rewrite the baseline with the measured timings")
	path := flag.String("baseline", "results/perf_baseline.json", "baseline file")
	repeats := flag.Int("repeats", 7, "repetitions per bench; the minimum is kept")
	band := flag.Float64("band", 0.40, "relative noise band recorded into the baseline by -write")
	flag.Parse()

	got, err := measure(*repeats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-perf:", err)
		os.Exit(2)
	}
	if err := checkDistances(); err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-perf:", err)
		os.Exit(1)
	}
	if *write {
		if err := writeBaseline(*path, got, *repeats, *band); err != nil {
			fmt.Fprintln(os.Stderr, "graphbig-perf:", err)
			os.Exit(2)
		}
		fmt.Printf("graphbig-perf: wrote %s (%d benches)\n", *path, len(got))
		return
	}
	base, err := readBaseline(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-perf:", err)
		os.Exit(2)
	}
	lines, failed := compare(base, got)
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		fmt.Println("graphbig-perf: wall-clock regression or result drift; fix the slowdown or rerun with -write to accept")
		os.Exit(1)
	}
}

// measure times every bench min-of-repeats with the repetitions
// interleaved across benches (the same estimator the BENCH trajectory
// uses): the minimum is the least-contended observation, and
// interleaving keeps one bench's cache wake-up from flattering the
// next.
func measure(repeats int) (map[string]benchResult, error) {
	d, err := gen.ByName("ldbc")
	if err != nil {
		return nil, err
	}
	g := d.Generate(benchScale, benchSeed, 0)
	flat := g.ViewWith(property.ViewOpts{})
	src := flat.Verts[0].ID
	views := map[int]*property.View{0: flat}
	for _, b := range benches {
		if _, ok := views[b.partitions]; !ok {
			views[b.partitions] = g.ViewWith(property.ViewOpts{Partitions: b.partitions})
		}
	}
	got := make(map[string]benchResult, len(benches))
	for rep := 0; rep < repeats; rep++ {
		for _, b := range benches {
			t0 := time.Now()
			res, err := b.run(g, workloads.Options{Source: src, Seed: benchSeed, View: views[b.partitions]})
			ms := float64(time.Since(t0).Nanoseconds()) / 1e6
			if err != nil {
				return nil, fmt.Errorf("bench %s: %v", b.name, err)
			}
			cur, ok := got[b.name]
			if !ok || ms < cur.MS {
				got[b.name] = benchResult{MS: ms, Visited: res.Visited, Checksum: res.Checksum}
			}
		}
	}
	return got, nil
}

// checkDistances runs the machine-independent oracles: SPathDelta's
// distances must be bitwise Bellman-Ford, flat and at every partition
// count in the sweep.
func checkDistances() error {
	d, err := gen.ByName("ldbc")
	if err != nil {
		return err
	}
	g := d.Generate(benchScale, benchSeed, 0)
	flat := g.ViewWith(property.ViewOpts{})
	src := flat.Verts[0].ID
	srcIdx := flat.IndexOf(src)
	want := bellmanFord(flat, srcIdx)
	for _, k := range []int{0, 1, 2, 4} {
		vw := flat
		if k > 0 {
			vw = g.ViewWith(property.ViewOpts{Partitions: k})
		}
		if _, err := workloads.SPathDelta(g, workloads.Options{Source: src, View: vw}); err != nil {
			return fmt.Errorf("SPathDelta k=%d: %v", k, err)
		}
		got := snapshotDist(g, vw)
		for id, w := range want {
			gd, ok := got[id]
			if !ok || (gd != w && !(math.IsInf(gd, 1) && math.IsInf(w, 1))) {
				return fmt.Errorf("SPathDelta k=%d: dist[%d] = %v, Bellman-Ford says %v", k, id, gd, w)
			}
		}
	}
	return nil
}

// bellmanFord computes exact shortest-path distances by vertex ID over
// the view, relaxing until fixpoint.
func bellmanFord(vw *property.View, src int32) map[property.VertexID]float64 {
	n := vw.Len()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			du := dist[u]
			if math.IsInf(du, 1) {
				continue
			}
			adj := vw.Adj(int32(u))
			wts := vw.AdjW(int32(u))[:len(adj)]
			for j, v := range adj {
				if nd := du + wts[j]; nd < dist[v] {
					dist[v] = nd
					changed = true
				}
			}
		}
	}
	out := make(map[property.VertexID]float64, n)
	for i := range vw.Verts {
		out[vw.Verts[i].ID] = dist[i]
	}
	return out
}

// snapshotDist reads the SPathDelta distance field by vertex ID, so
// comparisons survive any index permutation between views.
func snapshotDist(g *property.Graph, vw *property.View) map[property.VertexID]float64 {
	f := g.Schema().MustField(workloads.SPathDistField)
	out := make(map[property.VertexID]float64, len(vw.Verts))
	for i := range vw.Verts {
		out[vw.Verts[i].ID] = vw.Verts[i].Prop(f)
	}
	return out
}

// compare diffs measured timings and fingerprints against the baseline.
// Result drift fails exactly; wall-clock fails only past the baseline's
// relative band plus the absolute floor.
func compare(base *baseline, got map[string]benchResult) (lines []string, failed bool) {
	names := make([]string, 0, len(base.Benches))
	for name := range base.Benches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benches[name]
		g, ok := got[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("MISSING   %s: in baseline but not measured", name))
			failed = true
			continue
		}
		if g.Visited != b.Visited || g.Checksum != b.Checksum {
			lines = append(lines, fmt.Sprintf("DRIFT     %s: visited/checksum %d/%g, baseline %d/%g",
				name, g.Visited, g.Checksum, b.Visited, b.Checksum))
			failed = true
			continue
		}
		limit := b.MS * (1 + base.Band)
		switch {
		case g.MS > limit && g.MS > b.MS+absFloorMS:
			lines = append(lines, fmt.Sprintf("REGRESSED %s: %.3fms -> %.3fms (band limit %.3fms)", name, b.MS, g.MS, limit))
			failed = true
		case g.MS < b.MS*(1-base.Band) && g.MS < b.MS-absFloorMS:
			lines = append(lines, fmt.Sprintf("improved  %s: %.3fms -> %.3fms; rerun with -write to ratchet down", name, b.MS, g.MS))
		default:
			lines = append(lines, fmt.Sprintf("ok        %s: %.3fms (baseline %.3fms)", name, g.MS, b.MS))
		}
	}
	for name := range got {
		if _, ok := base.Benches[name]; !ok {
			lines = append(lines, fmt.Sprintf("NEW       %s: not in baseline; rerun with -write to record", name))
			failed = true
		}
	}
	return lines, failed
}

func readBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%v (run with -write to create the baseline)", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if b.Benches == nil {
		b.Benches = map[string]benchResult{}
	}
	if b.Band <= 0 {
		b.Band = 0.40
	}
	return &b, nil
}

func writeBaseline(path string, got map[string]benchResult, repeats int, band float64) error {
	b := baseline{
		Note: "Min-of-N native engine wall-clock at tiny fixed scale, plus exact visited/checksum fingerprints. " +
			"Ratcheted by cmd/graphbig-perf in CI: timings fail past the noise band, result drift fails exactly.",
		Scale:   benchScale,
		Seed:    benchSeed,
		Repeats: repeats,
		Band:    band,
		Benches: got,
	}
	if prev, err := readBaseline(path); err == nil {
		b.History = prev.History
	}
	raw, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
