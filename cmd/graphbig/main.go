// Command graphbig runs a single GraphBIG workload against a dataset, in
// native (wall-clock) or profiled (simulated-counter) mode, on the CPU or
// the simulated GPU.
//
// Usage:
//
//	graphbig -workload BFS -dataset ldbc -scale 0.02          # native CPU
//	graphbig -workload BFS -dataset ldbc -profile             # CPU counters
//	graphbig -workload CComp -dataset ca-road -gpu            # SIMT device
//	graphbig -workload SPath -in mygraph.el                   # file input
//	graphbig -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/graphbig/graphbig-go/internal/core"
	"github.com/graphbig/graphbig-go/internal/csr"
	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/harness"
	"github.com/graphbig/graphbig-go/internal/loader"
	"github.com/graphbig/graphbig-go/internal/order"
	"github.com/graphbig/graphbig-go/internal/partition"
	"github.com/graphbig/graphbig-go/internal/perfmon"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/simt"
	"github.com/graphbig/graphbig-go/internal/trace"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

func main() {
	wlName := flag.String("workload", "BFS", "workload name (see -list)")
	dataset := flag.String("dataset", "ldbc", "generated dataset name")
	in := flag.String("in", "", "edge-list file input (overrides -dataset)")
	input := flag.String("input", "", "SNAP edge-list input, plain or gzipped (overrides -dataset)")
	scale := flag.Float64("scale", 0.02, "generation scale")
	seed := flag.Int64("seed", 42, "seed")
	workers := flag.Int("workers", 0, "native worker count (0 = GOMAXPROCS)")
	deltaW := flag.Float64("delta", 0, "SPathDelta bucket width override (0 = sampled heuristic)")
	ordering := flag.String("order", "none", "vertex ordering composed into the view: "+order.FlagUsage())
	partitions := flag.Int("partitions", 0, "k-way partitioned (subgraph-centric) native execution; 0 = flat engine")
	partitionBy := flag.String("partition-by", "edge", "partition balance target: edge|vertex")
	profile := flag.Bool("profile", false, "run instrumented on the CPU model")
	gpu := flag.Bool("gpu", false, "run the GPU implementation on the SIMT device")
	samples := flag.Int("samples", 0, "workload sample parameter (BCentr sources, GUp deletions, Gibbs sweeps)")
	traceOut := flag.String("trace-out", "", "record the instrumented event stream to a file (implies -profile semantics)")
	traceIn := flag.String("trace-in", "", "replay a recorded trace through the CPU model and exit")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		prof := perfmon.NewProfile(perfmon.DefaultConfig())
		n, err := trace.Replay(f, prof)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d events from %s\n", n, *traceIn)
		printMetrics(prof.Report())
		return
	}

	if *list {
		fmt.Println("workload  type        category                    gpu  algorithm")
		for _, w := range core.Workloads {
			gpuMark := " "
			if w.GPU {
				gpuMark = "*"
			}
			fmt.Printf("%-9s %-11s %-27s %-4s %s\n", w.Name, w.Type, w.Category, gpuMark, w.Algorithm)
		}
		return
	}

	wl, err := core.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	ord, err := order.ByName(*ordering)
	if err != nil {
		fatal(err)
	}
	pmode, err := partition.ModeByName(*partitionBy)
	if err != nil {
		fatal(err)
	}
	ctx := &core.RunContext{Opt: workloads.Options{Workers: *workers, Seed: *seed, Samples: *samples, Delta: *deltaW}}

	if wl.NeedsBayes {
		s := harness.NewSession(harness.DefaultConfig())
		ctx.Bayes = s.Bayes()
		if *profile {
			prof := perfmon.NewProfile(perfmon.DefaultConfig())
			ctx.Bayes.SetTracker(prof)
			runCPU(wl, ctx)
			printMetrics(prof.Report())
			return
		}
		runCPU(wl, ctx)
		return
	}

	var g *property.Graph
	switch {
	case *input != "":
		g, err = loader.LoadSNAP(*input)
		if err != nil {
			fatal(err)
		}
	case *in != "":
		g, err = loader.Load(*in)
		if err != nil {
			fatal(err)
		}
	default:
		d, err := gen.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		g = d.Generate(*scale, *seed, *workers)
	}
	fmt.Printf("input: %d vertices, %d edges\n", g.VertexCount(), g.EdgeCount())

	// makeView composes the requested ordering and partition plan into the
	// dense view. For instrumented runs a non-default ordering also
	// re-lays-out the simulated addresses (property.Relayout) so the cache
	// model sees the locality the ordering produces; "none" keeps the seed
	// layout and byte-identical traces. The partition plan only changes
	// native engine scheduling — instrumented runs ignore it.
	makeView := func(relayout bool) *property.View {
		vw := g.ViewWith(property.ViewOpts{
			Workers:       *workers,
			Order:         ord,
			Partitions:    *partitions,
			PartitionMode: pmode,
		})
		if relayout && ord != nil {
			property.Relayout(g, vw)
		}
		return vw
	}

	if *gpu {
		vw := makeView(false)
		c := csr.FromProperty(g, vw)
		d := simt.NewDevice(simt.KeplerConfig())
		res, err := wl.RunGPU(d, c)
		if err != nil {
			fatal(err)
		}
		st := d.Stats()
		fmt.Printf("%s (GPU): value=%g iterations=%d\n", res.Name, res.Value, res.Iterations)
		fmt.Printf("BDR=%.3f MDR=%.3f IPC=%.3f read=%.2fGB/s write=%.2fGB/s time=%.3fms\n",
			st.BDR(), st.MDR(), st.IPC(), d.ReadThroughputGBs(), d.WriteThroughputGBs(), d.TimeSeconds()*1e3)
		return
	}

	ctx.Graph = g
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		rec, err := trace.NewRecorder(f)
		if err != nil {
			fatal(err)
		}
		ctx.Opt.View = makeView(true)
		g.SetTracker(rec)
		runCPU(wl, ctx)
		g.SetTracker(nil)
		if err := rec.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d events to %s\n", rec.Events(), *traceOut)
		return
	}
	if *profile {
		ctx.Opt.View = makeView(true)
		prof := perfmon.NewProfile(perfmon.DefaultConfig())
		g.SetTracker(prof)
		runCPU(wl, ctx)
		printMetrics(prof.Report())
		return
	}
	ctx.Opt.View = makeView(false)
	runCPU(wl, ctx)
}

func runCPU(wl core.Workload, ctx *core.RunContext) {
	start := time.Now()
	res, err := wl.Run(ctx)
	if err != nil {
		fatal(err)
	}
	el := time.Since(start)
	fmt.Printf("%s: visited=%d checksum=%g elapsed=%s\n", res.Workload, res.Visited, res.Checksum, el.Round(time.Microsecond))
	keys := make([]string, 0, len(res.Stats))
	for k := range res.Stats {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%g\n", k, res.Stats[k])
	}
}

func printMetrics(m perfmon.Metrics) {
	fmt.Printf("insts=%d cycles=%d ipc=%.3f framework=%.1f%%\n",
		m.Insts, m.TotalCycles, m.IPC, m.FrameworkShare*100)
	fmt.Printf("mpki: l1d=%.2f l2=%.2f l3=%.2f icache=%.3f\n",
		m.L1DMPKI, m.L2MPKI, m.L3MPKI, m.ICacheMPKI)
	fmt.Printf("branch-miss=%.2f%% dtlb-cycles=%.2f%%\n", m.BranchMiss*100, m.DTLBPenaltyPC)
	fmt.Printf("breakdown: frontend=%.1f%% badspec=%.1f%% retiring=%.1f%% backend=%.1f%%\n",
		m.Frontend*100, m.BadSpec*100, m.Retiring*100, m.Backend*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphbig:", err)
	os.Exit(1)
}
