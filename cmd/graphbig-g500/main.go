// Command graphbig-g500 runs the Graph500-style BFS benchmark (R-MAT
// generation, sampled roots, validated traversals, TEPS statistics) over
// the GraphBIG framework — the cross-suite comparison point of the
// paper's Table 3.
//
// Usage:
//
//	graphbig-g500 [-sscale 14] [-ef 16] [-roots 16] [-seed 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/graphbig/graphbig-go/internal/g500"
)

func main() {
	cfg := g500.DefaultConfig()
	flag.IntVar(&cfg.Scale, "sscale", cfg.Scale, "log2 vertex count")
	flag.IntVar(&cfg.EdgeFactor, "ef", cfg.EdgeFactor, "edges per vertex")
	flag.IntVar(&cfg.Roots, "roots", cfg.Roots, "number of BFS roots")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "R-MAT seed")
	flag.IntVar(&cfg.Workers, "workers", 0, "worker count (0 = GOMAXPROCS)")
	flag.Parse()

	res, err := g500.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-g500:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: scale %d, %d vertices, %d edges (construction %.2fs)\n",
		cfg.Scale, res.Vertices, res.Edges, res.ConstructSec)
	for _, r := range res.Roots {
		fmt.Printf("root %-8d reached %-8d edges %-9d %8.3f ms  %10.0f TEPS\n",
			r.Root, r.Reached, r.Edges, r.Seconds*1e3, r.TEPS)
	}
	fmt.Printf("harmonic mean: %.0f TEPS, median: %.0f TEPS over %d roots\n",
		res.HarmonicTEPS, res.MedianTEPS, len(res.Roots))
}
