package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// TestAnalyzersRegistered asserts the full suite is wired into the
// multichecker with documentation and a runner (per-package or module).
func TestAnalyzersRegistered(t *testing.T) {
	as := Analyzers()
	want := []string{"determinism", "trackedprim", "hotloop", "atomichygiene", "escape", "lockset", "purity", "boundscheck", "overflowconv", "divmod", "spawnsite", "wgbalance", "phasediscipline", "sharedwrite", "immutview", "aliasleak", "nilness", "constprop"}
	if len(as) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(as), len(want))
	}
	module := map[string]bool{
		"escape": true, "lockset": true, "purity": true,
		"boundscheck": true, "overflowconv": true, "divmod": true,
		"spawnsite": true, "wgbalance": true, "phasediscipline": true, "sharedwrite": true,
		"immutview": true, "aliasleak": true, "nilness": true, "constprop": true,
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if module[a.Name] {
			if a.RunModule == nil {
				t.Errorf("analyzer %s should be module-scoped", a.Name)
			}
		} else if a.Run == nil {
			t.Errorf("analyzer %s has no runner", a.Name)
		}
	}
	if doc := analysis.Doc(as); doc == "" {
		t.Error("Doc() rendered empty help text")
	}
}

// TestVetCleanPackage runs the suite over known-clean module packages and
// expects zero findings — the exit-0 smoke test.
func TestVetCleanPackage(t *testing.T) {
	var out bytes.Buffer
	n, err := analysis.Vet(&out, Analyzers(), "./internal/stats", "./internal/csr")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Vet on clean packages reported %d finding(s):\n%s", n, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("Vet wrote output with zero findings:\n%s", out.String())
	}
}

// TestSelectAnalyzers covers the -run filter: an empty list selects the
// whole suite, a subset comes back in suite order regardless of the
// flag's order, whitespace and duplicates are tolerated, and an unknown
// name is rejected with the valid choices.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Analyzers()) {
		t.Fatalf("empty -run selected %d analyzers, want %d", len(all), len(Analyzers()))
	}

	sel, err := selectAnalyzers("aliasleak, sharedwrite ,immutview,sharedwrite")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(sel))
	for i, a := range sel {
		got[i] = a.Name
	}
	want := []string{"sharedwrite", "immutview", "aliasleak"}
	if len(got) != len(want) {
		t.Fatalf("selectAnalyzers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selectAnalyzers = %v, want %v (suite order)", got, want)
		}
	}

	if _, err := selectAnalyzers("sharedwrte"); err == nil {
		t.Fatal("selectAnalyzers accepted an unknown analyzer name")
	} else if !strings.Contains(err.Error(), "sharedwrte") || !strings.Contains(err.Error(), "sharedwrite") {
		t.Fatalf("unknown-analyzer error should name the typo and the choices: %v", err)
	}

	if _, err := selectAnalyzers(" , "); err == nil {
		t.Fatal("selectAnalyzers accepted a list selecting nothing")
	}
}

// TestVetRunFilterTimings: VetAll with a -run subset reports one timing
// entry per selected analyzer and no findings on a clean package.
func TestVetRunFilterTimings(t *testing.T) {
	sel, err := selectAnalyzers("determinism,hotloop")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.VetAll(sel, "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("VetAll on a clean package reported %d finding(s)", len(res.Findings))
	}
	if len(res.Timings) != 2 || res.Timings[0].Analyzer != "determinism" || res.Timings[1].Analyzer != "hotloop" {
		t.Fatalf("VetAll timings = %+v, want one entry per selected analyzer in order", res.Timings)
	}
	for _, tm := range res.Timings {
		if tm.Seconds < 0 {
			t.Fatalf("negative wall-clock for %s", tm.Analyzer)
		}
	}
}

// TestReportWaivers pins the audit's failure counting and both output
// modes: a used+justified record passes; stale, unknown, and
// justification-free records each count against the tree.
func TestReportWaivers(t *testing.T) {
	recs := []analysis.WaiverRecord{
		{Analyzer: "sharedwrite", File: "a.go", Line: 3, Justification: "pinned by TestX", Used: true},
		{Analyzer: "sharedwrite", File: "a.go", Line: 9, Justification: "obsolete", Stale: true},
		{Analyzer: "sharedwrte", File: "b.go", Line: 4, Justification: "typo", Stale: true, Unknown: true},
		{Analyzer: "immutview", File: "c.go", Line: 7, Used: true},
	}
	var out bytes.Buffer
	bad, err := reportWaivers(&out, recs, false)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 3 {
		t.Fatalf("reportWaivers counted %d bad waiver(s), want 3", bad)
	}
	text := out.String()
	for _, frag := range []string{"a.go:3: vet:sharedwrite [used]", "STALE", "UNKNOWN ANALYZER", "(NO JUSTIFICATION)"} {
		if !strings.Contains(text, frag) {
			t.Fatalf("inventory output missing %q:\n%s", frag, text)
		}
	}

	out.Reset()
	if _, err := reportWaivers(&out, nil, true); err != nil {
		t.Fatal(err)
	}
	var parsed []analysis.WaiverRecord
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("-waivers -json wrote invalid JSON: %v\n%s", err, out.String())
	}
	if parsed == nil {
		t.Fatalf("-waivers -json wrote null, want []: %s", out.String())
	}
}

// TestVetJSONCleanPackage: -json must emit a well-formed (empty) array on
// a clean tree, never null — CI pipes it straight into jq.
func TestVetJSONCleanPackage(t *testing.T) {
	var out bytes.Buffer
	n, err := analysis.VetJSON(&out, Analyzers(), "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("VetJSON on a clean package reported %d finding(s):\n%s", n, out.String())
	}
	var finds []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &finds); err != nil {
		t.Fatalf("VetJSON wrote invalid JSON: %v\n%s", err, out.String())
	}
	if finds == nil {
		t.Fatalf("VetJSON wrote null, want []: %s", out.String())
	}
}
