package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// TestAnalyzersRegistered asserts the full suite is wired into the
// multichecker with documentation and a runner (per-package or module).
func TestAnalyzersRegistered(t *testing.T) {
	as := Analyzers()
	want := []string{"determinism", "trackedprim", "hotloop", "atomichygiene", "escape", "lockset", "purity", "boundscheck", "overflowconv", "divmod", "spawnsite", "wgbalance", "phasediscipline", "sharedwrite"}
	if len(as) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(as), len(want))
	}
	module := map[string]bool{
		"escape": true, "lockset": true, "purity": true,
		"boundscheck": true, "overflowconv": true, "divmod": true,
		"spawnsite": true, "wgbalance": true, "phasediscipline": true, "sharedwrite": true,
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if module[a.Name] {
			if a.RunModule == nil {
				t.Errorf("analyzer %s should be module-scoped", a.Name)
			}
		} else if a.Run == nil {
			t.Errorf("analyzer %s has no runner", a.Name)
		}
	}
	if doc := analysis.Doc(as); doc == "" {
		t.Error("Doc() rendered empty help text")
	}
}

// TestVetCleanPackage runs the suite over known-clean module packages and
// expects zero findings — the exit-0 smoke test.
func TestVetCleanPackage(t *testing.T) {
	var out bytes.Buffer
	n, err := analysis.Vet(&out, Analyzers(), "./internal/stats", "./internal/csr")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Vet on clean packages reported %d finding(s):\n%s", n, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("Vet wrote output with zero findings:\n%s", out.String())
	}
}

// TestVetJSONCleanPackage: -json must emit a well-formed (empty) array on
// a clean tree, never null — CI pipes it straight into jq.
func TestVetJSONCleanPackage(t *testing.T) {
	var out bytes.Buffer
	n, err := analysis.VetJSON(&out, Analyzers(), "./internal/stats")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("VetJSON on a clean package reported %d finding(s):\n%s", n, out.String())
	}
	var finds []analysis.Finding
	if err := json.Unmarshal(out.Bytes(), &finds); err != nil {
		t.Fatalf("VetJSON wrote invalid JSON: %v\n%s", err, out.String())
	}
	if finds == nil {
		t.Fatalf("VetJSON wrote null, want []: %s", out.String())
	}
}
