package main

import (
	"bytes"
	"testing"

	"github.com/graphbig/graphbig-go/internal/analysis"
)

// TestAnalyzersRegistered asserts the full suite is wired into the
// multichecker with documentation and a runner.
func TestAnalyzersRegistered(t *testing.T) {
	as := Analyzers()
	want := []string{"determinism", "trackedprim", "hotloop", "atomichygiene"}
	if len(as) != len(want) {
		t.Fatalf("Analyzers() = %d analyzers, want %d", len(as), len(want))
	}
	for i, a := range as {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no runner", a.Name)
		}
	}
	if doc := analysis.Doc(as); doc == "" {
		t.Error("Doc() rendered empty help text")
	}
}

// TestVetCleanPackage runs the suite over known-clean module packages and
// expects zero findings — the exit-0 smoke test.
func TestVetCleanPackage(t *testing.T) {
	var out bytes.Buffer
	n, err := analysis.Vet(&out, Analyzers(), "./internal/stats", "./internal/csr")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Vet on clean packages reported %d finding(s):\n%s", n, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("Vet wrote output with zero findings:\n%s", out.String())
	}
}
