// Command graphbig-vet runs the project's invariant analyzers over the
// module — the compile-time counterpart of the golden parity suite. It is
// a required CI step; run it locally with:
//
//	go run ./cmd/graphbig-vet ./...
//
// The suite has two layers: per-package analyzers (determinism,
// trackedprim, hotloop, atomichygiene) and module analyzers (escape,
// lockset, purity, boundscheck, overflowconv, divmod, spawnsite,
// wgbalance, phasediscipline, sharedwrite, immutview, aliasleak) that
// build a call graph over every loaded package and reason across
// function and package boundaries — boundscheck, overflowconv, and
// divmod on top of a shared value-range abstract interpretation;
// spawnsite, wgbalance, phasediscipline, and sharedwrite on the
// goroutine-topology layer (spawn sites, WaitGroup/channel
// happens-before edges, superstep phase tokens, write-disjointness
// proofs); and immutview and aliasleak on the Andersen points-to layer
// (View immutability after publication, scratch-buffer alias hygiene)
// (DESIGN.md §7).
//
// Flags:
//
//	-run a,b,...    run only the named analyzers (default: the full suite)
//	-waivers        audit //vet:* directives instead of reporting findings:
//	                print the inventory (analyzer, file:line, justification,
//	                used) and exit 1 if any directive is stale (suppressed
//	                nothing this run), names no analyzer in the run set, or
//	                lacks a justification
//	-timings        print per-analyzer wall-clock to stderr after the run
//	-budget d       fail (exit 1) if total analyzer wall-clock exceeds the
//	                duration d (e.g. 120s) — the CI time ratchet
//	-json           emit the findings (or, with -waivers, the inventory) as
//	                JSON instead of text
//	-debug=ranges   append inferred intervals to range-analyzer findings
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding (or the waiver audit or time budget fails), 2 on internal
// failure (package loading, type errors, unknown flag values). See
// DESIGN.md §7 for what each analyzer protects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/aliasleak"
	"github.com/graphbig/graphbig-go/internal/analysis/atomichygiene"
	"github.com/graphbig/graphbig-go/internal/analysis/boundscheck"
	"github.com/graphbig/graphbig-go/internal/analysis/constprop"
	"github.com/graphbig/graphbig-go/internal/analysis/determinism"
	"github.com/graphbig/graphbig-go/internal/analysis/divmod"
	"github.com/graphbig/graphbig-go/internal/analysis/escape"
	"github.com/graphbig/graphbig-go/internal/analysis/hotloop"
	"github.com/graphbig/graphbig-go/internal/analysis/immutview"
	"github.com/graphbig/graphbig-go/internal/analysis/lockset"
	"github.com/graphbig/graphbig-go/internal/analysis/nilness"
	"github.com/graphbig/graphbig-go/internal/analysis/overflowconv"
	"github.com/graphbig/graphbig-go/internal/analysis/phasediscipline"
	"github.com/graphbig/graphbig-go/internal/analysis/purity"
	"github.com/graphbig/graphbig-go/internal/analysis/sharedwrite"
	"github.com/graphbig/graphbig-go/internal/analysis/spawnsite"
	"github.com/graphbig/graphbig-go/internal/analysis/trackedprim"
	"github.com/graphbig/graphbig-go/internal/analysis/wgbalance"
)

// Analyzers returns the full registered suite, in reporting order:
// per-package analyzers first, then the interprocedural module analyzers.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		trackedprim.Analyzer,
		hotloop.Analyzer,
		atomichygiene.Analyzer,
		escape.Analyzer,
		lockset.Analyzer,
		purity.Analyzer,
		boundscheck.Analyzer,
		overflowconv.Analyzer,
		divmod.Analyzer,
		spawnsite.Analyzer,
		wgbalance.Analyzer,
		phasediscipline.Analyzer,
		sharedwrite.Analyzer,
		immutview.Analyzer,
		aliasleak.Analyzer,
		nilness.Analyzer,
		constprop.Analyzer,
	}
}

// selectAnalyzers filters the suite by a comma-separated -run list,
// preserving suite order. An empty list selects everything; an unknown
// name is an error naming the valid choices.
func selectAnalyzers(runList string) ([]*analysis.Analyzer, error) {
	all := Analyzers()
	if runList == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	var names []string
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	want := map[string]bool{}
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if byName[name] == nil {
			return nil, fmt.Errorf("unknown analyzer %q (choose from %s)", name, strings.Join(names, ", "))
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("-run selected no analyzers")
	}
	var sel []*analysis.Analyzer
	for _, a := range all {
		if want[a.Name] {
			sel = append(sel, a)
		}
	}
	return sel, nil
}

// reportWaivers writes the inventory and returns the number of
// directives that fail the audit: stale, unknown-analyzer, or
// justification-free.
func reportWaivers(w io.Writer, recs []analysis.WaiverRecord, jsonOut bool) (int, error) {
	bad := 0
	for _, r := range recs {
		if r.Stale || r.Justification == "" {
			bad++
		}
	}
	if jsonOut {
		if recs == nil {
			recs = []analysis.WaiverRecord{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return bad, enc.Encode(recs)
	}
	for _, r := range recs {
		status := "used"
		switch {
		case r.Unknown:
			status = "UNKNOWN ANALYZER"
		case r.Stale:
			status = "STALE"
		}
		just := r.Justification
		if just == "" {
			just = "(NO JUSTIFICATION)"
		}
		fmt.Fprintf(w, "%s:%d: vet:%s [%s] %s\n", r.File, r.Line, r.Analyzer, status, just)
	}
	return bad, nil
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings (or the -waivers inventory) as JSON")
	debug := flag.String("debug", "", "debug mode: 'ranges' appends inferred value ranges to range-analyzer findings")
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	waivers := flag.Bool("waivers", false, "audit //vet:* directives: print the inventory, fail on stale or unjustified ones")
	timings := flag.Bool("timings", false, "print per-analyzer wall-clock to stderr")
	timingsOut := flag.String("timings-out", "", "write per-analyzer wall-clock as a JSON array to this file (the CI trajectory artifact)")
	budget := flag.Duration("budget", 0, "fail if total analyzer wall-clock exceeds this duration (0 = no limit)")
	list := flag.Bool("list", false, "print every registered analyzer with its one-line doc and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphbig-vet [-list] [-run a,b,...] [-waivers] [-timings] [-timings-out f.json] [-budget 120s] [-json] [-debug=ranges] [packages]\n\nanalyzers:\n%s", analysis.Doc(Analyzers()))
	}
	flag.Parse()
	if *list {
		fmt.Print(analysis.Doc(Analyzers()))
		return
	}
	switch *debug {
	case "":
	case "ranges":
		analysis.SetDebug(true)
	default:
		fmt.Fprintf(os.Stderr, "graphbig-vet: unknown -debug mode %q (supported: ranges)\n", *debug)
		os.Exit(2)
	}
	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
		os.Exit(2)
	}
	res, err := analysis.VetAll(selected, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
		os.Exit(2)
	}
	total := 0.0
	for _, t := range res.Timings {
		total += t.Seconds
	}
	if *timings {
		for _, t := range res.Timings {
			fmt.Fprintf(os.Stderr, "graphbig-vet: %-16s %8.3fs\n", t.Analyzer, t.Seconds)
		}
		fmt.Fprintf(os.Stderr, "graphbig-vet: %-16s %8.3fs\n", "total", total)
	}
	if *timingsOut != "" {
		buf, err := json.MarshalIndent(res.Timings, "", "  ")
		if err == nil {
			err = os.WriteFile(*timingsOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
			os.Exit(2)
		}
	}
	fail := false
	if *waivers {
		bad, err := reportWaivers(os.Stdout, res.Waivers, *jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
			os.Exit(2)
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "graphbig-vet: %d waiver(s) are stale, unknown, or unjustified\n", bad)
			fail = true
		}
	} else {
		if *jsonOut {
			finds := res.Findings
			if finds == nil {
				finds = []analysis.Finding{}
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(finds); err != nil {
				fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
				os.Exit(2)
			}
		} else {
			for _, f := range res.Findings {
				fmt.Fprintf(os.Stdout, "%s:%d:%d: %s [%s]\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
			}
		}
		if n := len(res.Findings); n > 0 {
			fmt.Fprintf(os.Stderr, "graphbig-vet: %d finding(s)\n", n)
			fail = true
		}
	}
	if *budget > 0 && total > budget.Seconds() {
		fmt.Fprintf(os.Stderr, "graphbig-vet: analyzer wall-clock %.1fs exceeds budget %s\n", total, *budget)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
