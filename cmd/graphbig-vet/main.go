// Command graphbig-vet runs the project's invariant analyzers over the
// module — the compile-time counterpart of the golden parity suite. It is
// a required CI step; run it locally with:
//
//	go run ./cmd/graphbig-vet ./...
//
// The suite has two layers: per-package analyzers (determinism,
// trackedprim, hotloop, atomichygiene) and module analyzers (escape,
// lockset, purity, boundscheck, overflowconv, divmod, spawnsite,
// wgbalance, phasediscipline, sharedwrite) that build a call graph over
// every loaded package and reason across function and package
// boundaries — boundscheck, overflowconv, and divmod on top of a shared
// value-range abstract interpretation, and the last four on the
// goroutine-topology layer (spawn sites, WaitGroup/channel
// happens-before edges, superstep phase tokens, write-disjointness
// proofs) (DESIGN.md §7). With -json, findings are emitted as a
// JSON array of {file,line,col,analyzer,message} records instead of
// text — the format CI uploads as annotations. With -debug=ranges, the
// range-based analyzers append the inferred interval to each finding.
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, 2 on internal failure (package loading or type errors). See
// DESIGN.md §7 for what each analyzer protects.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/atomichygiene"
	"github.com/graphbig/graphbig-go/internal/analysis/boundscheck"
	"github.com/graphbig/graphbig-go/internal/analysis/determinism"
	"github.com/graphbig/graphbig-go/internal/analysis/divmod"
	"github.com/graphbig/graphbig-go/internal/analysis/escape"
	"github.com/graphbig/graphbig-go/internal/analysis/hotloop"
	"github.com/graphbig/graphbig-go/internal/analysis/lockset"
	"github.com/graphbig/graphbig-go/internal/analysis/overflowconv"
	"github.com/graphbig/graphbig-go/internal/analysis/phasediscipline"
	"github.com/graphbig/graphbig-go/internal/analysis/purity"
	"github.com/graphbig/graphbig-go/internal/analysis/sharedwrite"
	"github.com/graphbig/graphbig-go/internal/analysis/spawnsite"
	"github.com/graphbig/graphbig-go/internal/analysis/trackedprim"
	"github.com/graphbig/graphbig-go/internal/analysis/wgbalance"
)

// Analyzers returns the full registered suite, in reporting order:
// per-package analyzers first, then the interprocedural module analyzers.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		trackedprim.Analyzer,
		hotloop.Analyzer,
		atomichygiene.Analyzer,
		escape.Analyzer,
		lockset.Analyzer,
		purity.Analyzer,
		boundscheck.Analyzer,
		overflowconv.Analyzer,
		divmod.Analyzer,
		spawnsite.Analyzer,
		wgbalance.Analyzer,
		phasediscipline.Analyzer,
		sharedwrite.Analyzer,
	}
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array of {file,line,col,analyzer,message}")
	debug := flag.String("debug", "", "debug mode: 'ranges' appends inferred value ranges to range-analyzer findings")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphbig-vet [-json] [-debug=ranges] [packages]\n\nanalyzers:\n%s", analysis.Doc(Analyzers()))
	}
	flag.Parse()
	switch *debug {
	case "":
	case "ranges":
		analysis.SetDebug(true)
	default:
		fmt.Fprintf(os.Stderr, "graphbig-vet: unknown -debug mode %q (supported: ranges)\n", *debug)
		os.Exit(2)
	}
	vet := analysis.Vet
	if *jsonOut {
		vet = analysis.VetJSON
	}
	n, err := vet(os.Stdout, Analyzers(), flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "graphbig-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
