// Command graphbig-vet runs the project's invariant analyzers over the
// module — the compile-time counterpart of the golden parity suite. It is
// a required CI step; run it locally with:
//
//	go run ./cmd/graphbig-vet ./...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer reports a
// finding, 2 on internal failure (package loading or type errors). See
// DESIGN.md §7 for what each analyzer protects.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/graphbig/graphbig-go/internal/analysis"
	"github.com/graphbig/graphbig-go/internal/analysis/atomichygiene"
	"github.com/graphbig/graphbig-go/internal/analysis/determinism"
	"github.com/graphbig/graphbig-go/internal/analysis/hotloop"
	"github.com/graphbig/graphbig-go/internal/analysis/trackedprim"
)

// Analyzers returns the full registered suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		trackedprim.Analyzer,
		hotloop.Analyzer,
		atomichygiene.Analyzer,
	}
}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: graphbig-vet [packages]\n\nanalyzers:\n%s", analysis.Doc(Analyzers()))
	}
	flag.Parse()
	n, err := analysis.Vet(os.Stdout, Analyzers(), flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-vet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "graphbig-vet: %d finding(s)\n", n)
		os.Exit(1)
	}
}
