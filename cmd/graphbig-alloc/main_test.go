package main

import (
	"os"
	"path/filepath"
	"testing"
)

// sample is a condensed -m=2 transcript: for each escaping value the
// compiler prints an explanation header (trailing colon), indented flow
// lines sharing the same position, and then the decision itself. Only
// the two decision lines for partitioned.go and one for plan.go count.
const sample = `# github.com/graphbig/graphbig-go/internal/engine
internal/engine/partitioned.go:64:10: can inline nextStamp with cost 12
internal/engine/partitioned.go:66:14: make([]int64, k) escapes to heap:
internal/engine/partitioned.go:66:14:   flow: {heap} = &{storage for make([]int64, k)}:
internal/engine/partitioned.go:66:14:     from make([]int64, k) (non-constant size) at internal/engine/partitioned.go:66:14
internal/engine/partitioned.go:66:14: make([]int64, k) escapes to heap
internal/engine/partitioned.go:80:2: st escapes to heap:
internal/engine/partitioned.go:80:2:   flow: ~r0 = &st:
internal/engine/partitioned.go:80:2:     from return &st (return) at internal/engine/partitioned.go:82:2
internal/engine/partitioned.go:80:2: moved to heap: st
internal/partition/plan.go:31:12: new(Plan) escapes to heap
internal/engine/traverse.go:40:9: leaking param: spec
`

func TestParseEscapesCountsOnlyDecisions(t *testing.T) {
	files := parseEscapes(sample)
	want := map[string]int{
		"internal/engine/partitioned.go": 2,
		"internal/partition/plan.go":     1,
	}
	if len(files) != len(want) {
		t.Fatalf("parseEscapes = %v, want %v", files, want)
	}
	for f, n := range want {
		if files[f] != n {
			t.Errorf("parseEscapes[%s] = %d, want %d (headers or flow lines double-counted?)", f, files[f], n)
		}
	}
}

func TestParseEscapesDedupsRepeatedDecisions(t *testing.T) {
	dup := sample + "internal/partition/plan.go:31:12: new(Plan) escapes to heap\n"
	if n := parseEscapes(dup)["internal/partition/plan.go"]; n != 1 {
		t.Errorf("repeated decision line counted %d times, want 1", n)
	}
}

// TestDiffFlagsSyntheticNewEscape is the ratchet probe: a file whose
// count grows past the baseline must be reported as a regression, a
// shrinking one as an improvement, and untouched files as neither.
func TestDiffFlagsSyntheticNewEscape(t *testing.T) {
	base := map[string]int{
		"internal/engine/partitioned.go": 2,
		"internal/engine/sssp.go":        3,
		"internal/order/bfsorder.go":     1,
	}
	got := map[string]int{
		"internal/engine/partitioned.go": 3, // synthetic new escape
		"internal/engine/sssp.go":        3,
		"internal/order/bfsorder.go":     0,
		"internal/concurrent/frontier.go": 1, // new file: also growth
	}
	regressed, improved := diff(base, got)
	if len(regressed) != 2 {
		t.Fatalf("diff reported %d regressions, want 2: %v", len(regressed), regressed)
	}
	if want := "REGRESSED internal/concurrent/frontier.go: 0 -> 1 heap escapes"; regressed[0] != want {
		t.Errorf("regressed[0] = %q, want %q", regressed[0], want)
	}
	if want := "REGRESSED internal/engine/partitioned.go: 2 -> 3 heap escapes"; regressed[1] != want {
		t.Errorf("regressed[1] = %q, want %q", regressed[1], want)
	}
	if len(improved) != 1 || improved[0] != "improved  internal/order/bfsorder.go: 1 -> 0 heap escapes" {
		t.Errorf("improved = %v, want the bfsorder.go 1 -> 0 line", improved)
	}
}

// TestBaselineRoundTrip writes a baseline, reads it back, and checks
// History survives a rewrite — the ratchet's audit trail must not be
// lost when -write accepts a new count.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alloc_baseline.json")
	if err := writeBaseline(path, map[string]int{"internal/engine/traverse.go": 4}); err != nil {
		t.Fatal(err)
	}
	b, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Files["internal/engine/traverse.go"] != 4 {
		t.Fatalf("round-trip lost counts: %v", b.Files)
	}
	// Inject a history entry the way a maintainer would, then rewrite.
	if err := os.WriteFile(path, []byte(
		`{"history":["seed"],"files":{"internal/engine/traverse.go":4}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := writeBaseline(path, map[string]int{"internal/engine/traverse.go": 3}); err != nil {
		t.Fatal(err)
	}
	b2, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.History) != 1 || b2.History[0] != "seed" {
		t.Errorf("rewrite dropped History: %v", b2.History)
	}
	if b2.Files["internal/engine/traverse.go"] != 3 {
		t.Errorf("rewrite kept stale count: %v", b2.Files)
	}
}

// TestMeasureBaselineCurrent compiles the real hot packages and compares
// against the committed baseline — the same gate CI runs, so a PR that
// adds a heap escape fails here first.
func TestMeasureBaselineCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping compiler run in -short mode")
	}
	if err := os.Chdir(findModuleRoot(t)); err != nil {
		t.Fatal(err)
	}
	files, err := measure()
	if err != nil {
		t.Fatal(err)
	}
	base, err := readBaseline("results/alloc_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	regressed, _ := diff(base.Files, files)
	if len(regressed) > 0 {
		t.Errorf("heap escapes regressed vs results/alloc_baseline.json:\n%s",
			regressed)
	}
}

func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
