// Command graphbig-alloc is the ground truth behind the escape
// analyzer: it compiles the hot packages with the compiler's escape
// analysis diagnostics enabled (-m=2), counts the heap-escape decisions
// ("moved to heap: x", "... escapes to heap") per file, and ratchets
// the counts against results/alloc_baseline.json.
//
// The escape analyzer reasons about which allocation idioms should stay
// on the stack; this tool measures what the compiler actually decided.
// The two disagree at the margins (the compiler's escape analysis is
// flow-sensitive over its own IR, the analyzer is syntactic over hot
// loops), so the contract is a ratchet, not equality: a change that
// grows a file's heap-escape count fails CI until the baseline is
// deliberately rewritten with -write. Steady-state traversal code paying
// a new per-call allocation is exactly the regression class the BENCH
// records cannot localize — the ratchet catches it at the file level.
//
// Only the final decision lines are counted. With -m=2 the compiler
// prints, for each escaping value, an explanation header ("x escapes to
// heap:" with a trailing colon) followed by indented flow lines and then
// the decision itself ("moved to heap: x" or "... escapes to heap" with
// no trailing colon); counting headers too would double-count every
// escape that the compiler explains.
//
// A fresh GOCACHE is used for every run: cached package builds skip the
// compiler entirely and report zero escapes for untouched files, which
// would let regressions hide behind the cache.
//
// Usage:
//
//	go run ./cmd/graphbig-alloc           # compare against the baseline
//	go run ./cmd/graphbig-alloc -write   # rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

const module = "github.com/graphbig/graphbig-go"

// hotPkgs is the allocation-sensitive core: the engine and its
// concurrency scaffolding, the workload kernels, and the ordering and
// partitioning layers whose scratch arrays must stay amortized.
var hotPkgs = []string{
	"internal/engine",
	"internal/concurrent",
	"internal/workloads",
	"internal/order",
	"internal/partition",
}

type baseline struct {
	Note string `json:"note,omitempty"`
	// History records notable before/after movements of the ratchet;
	// -write preserves it.
	History []string       `json:"history,omitempty"`
	Files   map[string]int `json:"files"`
}

// decisionRE matches a final escape decision. The non-greedy message
// match plus the anchored end excludes the "escapes to heap:" headers
// (trailing colon) and the indented "flow:" / "from ..." detail lines.
var decisionRE = regexp.MustCompile(`^(.*\.go):\d+:\d+: (?:moved to heap: .+|.+ escapes to heap)$`)

func main() {
	write := flag.Bool("write", false, "rewrite the baseline with the measured counts")
	path := flag.String("baseline", "results/alloc_baseline.json", "baseline file")
	flag.Parse()

	files, err := measure()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-alloc:", err)
		os.Exit(2)
	}
	if *write {
		if err := writeBaseline(*path, files); err != nil {
			fmt.Fprintln(os.Stderr, "graphbig-alloc:", err)
			os.Exit(2)
		}
		fmt.Printf("graphbig-alloc: wrote %s (%d files, %d heap escapes)\n",
			*path, len(files), total(files))
		return
	}
	base, err := readBaseline(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphbig-alloc:", err)
		os.Exit(2)
	}
	regressed, improved := diff(base.Files, files)
	for _, line := range regressed {
		fmt.Println(line)
	}
	for _, line := range improved {
		fmt.Println(line)
	}
	fmt.Printf("graphbig-alloc: %d heap escapes across %d hot packages (baseline %d)\n",
		total(files), len(hotPkgs), total(base.Files))
	if len(regressed) > 0 {
		fmt.Println("graphbig-alloc: allocation regression; keep the value on the stack or rerun with -write to accept")
		os.Exit(1)
	}
	if len(improved) > 0 {
		fmt.Println("graphbig-alloc: improvement — rerun with -write to ratchet the baseline down")
	}
}

// measure compiles the hot packages under a throwaway GOCACHE and
// returns heap-escape counts keyed by module-relative file path.
func measure() (map[string]int, error) {
	cache, err := os.MkdirTemp("", "graphbig-alloc-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(cache)

	args := []string{"build"}
	for _, p := range hotPkgs {
		args = append(args, "-gcflags="+module+"/"+p+"=-m=2")
	}
	for _, p := range hotPkgs {
		args = append(args, "./"+p)
	}
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "GOCACHE="+cache)
	out, err := cmd.CombinedOutput()
	files := parseEscapes(string(out))
	if err != nil && len(files) == 0 {
		return nil, fmt.Errorf("go build failed: %v\n%s", err, out)
	}
	return files, nil
}

// parseEscapes extracts per-file heap-escape counts from -m=2 compiler
// diagnostics, counting each decision line once (the compiler repeats a
// position across its explanation header and flow lines).
func parseEscapes(out string) map[string]int {
	files := map[string]int{}
	seen := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		m := decisionRE.FindStringSubmatch(line)
		if m == nil || seen[line] {
			continue
		}
		seen[line] = true
		files[relPath(m[1])]++
	}
	return files
}

// relPath normalizes a compiler-reported filename (absolute or
// build-dir relative) to a module-relative, slash-separated path.
func relPath(name string) string {
	name = filepath.ToSlash(name)
	for _, p := range hotPkgs {
		if i := strings.Index(name, p+"/"); i >= 0 {
			return name[i:]
		}
	}
	return strings.TrimPrefix(name, "./")
}

func readBaseline(path string) (*baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%v (run with -write to create the baseline)", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	if b.Files == nil {
		b.Files = map[string]int{}
	}
	return &b, nil
}

func writeBaseline(path string, files map[string]int) error {
	b := baseline{
		Note: "Heap-escape decisions per file under -gcflags=-m=2 (go build, hot packages). " +
			"Ratcheted by cmd/graphbig-alloc in CI: growth fails, reductions should be written back.",
		Files: files,
	}
	if prev, err := readBaseline(path); err == nil {
		b.History = prev.History
	}
	raw, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// diff returns regression and improvement report lines comparing
// measured counts to the baseline.
func diff(base, got map[string]int) (regressed, improved []string) {
	keys := map[string]bool{}
	for f := range base {
		keys[f] = true
	}
	for f := range got {
		keys[f] = true
	}
	sorted := make([]string, 0, len(keys))
	for f := range keys {
		sorted = append(sorted, f)
	}
	sort.Strings(sorted)
	for _, f := range sorted {
		b, g := base[f], got[f]
		switch {
		case g > b:
			regressed = append(regressed, fmt.Sprintf("REGRESSED %s: %d -> %d heap escapes", f, b, g))
		case g < b:
			improved = append(improved, fmt.Sprintf("improved  %s: %d -> %d heap escapes", f, b, g))
		}
	}
	return regressed, improved
}

func total(files map[string]int) int {
	n := 0
	for _, c := range files {
		n += c
	}
	return n
}
