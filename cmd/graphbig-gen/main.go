// Command graphbig-gen generates one of the five GraphBIG datasets (or an
// R-MAT graph) and writes it as an edge-list file.
//
// Usage:
//
//	graphbig-gen -dataset ldbc -scale 0.1 -seed 42 -o ldbc.el
//	graphbig-gen -dataset rmat -rmat-scale 16 -o rmat16.el
//	graphbig-gen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/loader"
	"github.com/graphbig/graphbig-go/internal/property"
)

func main() {
	dataset := flag.String("dataset", "ldbc", "dataset name (see -list) or 'rmat'")
	scale := flag.Float64("scale", 0.02, "fraction of the paper-scale size (Table 7)")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "", "output file (default <dataset>.el)")
	rmatScale := flag.Int("rmat-scale", 14, "log2 vertex count for -dataset rmat")
	rmatEF := flag.Int("rmat-ef", 16, "edge factor for -dataset rmat")
	list := flag.Bool("list", false, "list datasets and exit")
	stats := flag.Bool("stats", false, "print the degree histogram after generating")
	flag.Parse()

	if *list {
		for _, d := range gen.Catalog {
			fmt.Printf("%-12s %-12s paper scale: %d vertices / %d edges\n",
				d.Name, d.Type.String(), d.PaperV, d.PaperE)
		}
		fmt.Println("rmat         synthetic    Graph500-style Kronecker generator")
		return
	}

	var g *property.Graph
	if *dataset == "rmat" {
		g = gen.RMAT(*rmatScale, *rmatEF, *seed, 0)
	} else {
		d, err := gen.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		g = d.Generate(*scale, *seed, 0)
	}
	p := gen.Summarize(g)
	path := *out
	if path == "" {
		path = *dataset + ".el"
	}
	if err := loader.Save(path, g); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d vertices, %d edges (avg deg %.2f, max %d) -> %s\n",
		*dataset, p.V, p.E, p.AvgDeg, p.MaxDeg, path)
	if *stats {
		fmt.Printf("degree CV %.2f, %d isolated\ndegree histogram:\n%s",
			p.DegCV, p.Isolated, p.DegreeHst.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphbig-gen:", err)
	os.Exit(1)
}
