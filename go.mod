module github.com/graphbig/graphbig-go

go 1.24
