// Engine-refactor comparison benches: the pre-engine framework-walk hot
// loops for BFS and CComp are preserved here as test-only code, so
// `go test -bench 'Legacy|NativeBFS$|NativeCComp$'` measures the
// index-resolved engine against the FindVertex-per-edge formulation it
// replaced. Recorded numbers live in results/engine_refactor.json.
package graphbig_test

import (
	"sync/atomic"
	"testing"

	"github.com/graphbig/graphbig-go/internal/concurrent"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

// legacyBFS is the seed implementation's native path: a level-synchronous
// frontier where every edge goes through FindVertex (hash lookup) and
// property reads resolve the neighbor's index.
func legacyBFS(g *property.Graph, vw *property.View) int64 {
	n := vw.Len()
	lvl := g.EnsureField(workloads.BFSLevelField)
	idxSlot := g.EnsureField(property.SysIndexField)
	for _, v := range vw.Verts {
		v.SetPropRaw(lvl, -1)
	}
	visited := concurrent.NewBitmap(n)
	cur := concurrent.NewFrontier(n)
	next := concurrent.NewFrontier(n)

	src := vw.Verts[0]
	g.SetProp(src, lvl, 0)
	visited.Set(0)
	cur.Push(0)

	var reached atomic.Int64
	reached.Store(1)
	depth := 0
	for cur.Len() > 0 {
		depth++
		levelVal := float64(depth)
		fr := cur.Slice()
		concurrent.ParallelItems(len(fr), 0, 64, func(k int) {
			u := vw.Verts[fr[k]]
			g.Neighbors(u, func(_ int, e *property.Edge) bool {
				nb := g.FindVertex(e.To)
				if nb == nil {
					return true
				}
				if g.GetProp(nb, lvl) >= 0 {
					return true
				}
				nbIdx := int(g.GetProp(nb, idxSlot))
				if visited.TrySet(nbIdx) {
					g.SetProp(nb, lvl, levelVal)
					next.Push(int32(nbIdx))
					reached.Add(1)
				}
				return true
			})
		})
		cur, next = next, cur
		next.Reset()
	}
	return reached.Load()
}

// legacyCComp is the seed implementation's native path: successive
// framework-walk BFS traversals, one per component.
func legacyCComp(g *property.Graph, vw *property.View) int {
	n := vw.Len()
	lbl := g.EnsureField(workloads.CCompField)
	idxSlot := g.EnsureField(property.SysIndexField)
	for _, v := range vw.Verts {
		v.SetPropRaw(lbl, -1)
	}
	visited := concurrent.NewBitmap(n)
	cur := concurrent.NewFrontier(n)
	next := concurrent.NewFrontier(n)

	comps := 0
	for s := 0; s < n; s++ {
		if visited.Test(s) {
			continue
		}
		label := float64(comps)
		comps++
		visited.Set(s)
		g.SetProp(vw.Verts[s], lbl, label)
		cur.Reset()
		cur.Push(int32(s))
		for cur.Len() > 0 {
			fr := cur.Slice()
			concurrent.ParallelItems(len(fr), 0, 64, func(k int) {
				u := vw.Verts[fr[k]]
				g.Neighbors(u, func(_ int, e *property.Edge) bool {
					nb := g.FindVertex(e.To)
					if nb == nil {
						return true
					}
					if g.GetProp(nb, lbl) >= 0 {
						return true
					}
					nbIdx := int(g.GetProp(nb, idxSlot))
					if visited.TrySet(nbIdx) {
						g.SetProp(nb, lbl, label)
						next.Push(int32(nbIdx))
					}
					return true
				})
			})
			cur, next = next, cur
			next.Reset()
		}
	}
	return comps
}

func BenchmarkLegacyBFS(b *testing.B) {
	g, vw := nativeGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyBFS(g, vw)
	}
	b.SetBytes(int64(g.EdgeCount()) * 2 * 24)
}

func BenchmarkLegacyCComp(b *testing.B) {
	g, vw := nativeGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		legacyCComp(g, vw)
	}
	b.SetBytes(int64(g.EdgeCount()) * 2 * 24)
}

// TestLegacyEngineAgreement pins the engine-backed workloads to the legacy
// loops' results on the benchmark graph, so the Legacy benches above stay
// honest comparisons.
func TestLegacyEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-graph agreement is not a -short test")
	}
	g, vw := nativeGraph(nil)
	reached := legacyBFS(g, vw)
	res, err := workloads.BFS(g, workloads.Options{View: vw})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visited != reached {
		t.Errorf("engine BFS visited %d, legacy %d", res.Visited, reached)
	}
	comps := legacyCComp(g, vw)
	cres, err := workloads.CComp(g, workloads.Options{View: vw})
	if err != nil {
		t.Fatal(err)
	}
	if int(cres.Checksum) != comps {
		t.Errorf("engine CComp found %v components, legacy %d", cres.Checksum, comps)
	}
}
