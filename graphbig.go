// Package graphbig is a from-scratch Go reproduction of the GraphBIG
// benchmark suite ("GraphBIG: Understanding Graph Computing in the Context
// of Industrial Solutions", SC'15): an industrial-style vertex-centric
// property-graph framework, the 13 CPU and 8 GPU workloads, generators for
// the five experiment datasets, and the simulated measurement substrates
// (a CPU microarchitecture model and a SIMT GPU model) that regenerate
// every figure and table of the paper's evaluation.
//
// The facade re-exports the suite's primary entry points; the full API
// lives in the internal packages:
//
//	internal/property  — the dynamic vertex-centric graph framework
//	internal/engine    — unified direction-optimizing frontier engine
//	internal/csr       — CSR/COO static representations
//	internal/gen       — dataset generators (Twitter, Knowledge, Gene, Road, LDBC, R-MAT)
//	internal/bayes     — Bayesian networks + MUNIN-like generator
//	internal/workloads — the 13 CPU workloads
//	internal/gpuwl     — the 8 GPU workloads
//	internal/perfmon   — CPU cache/TLB/branch/cycle model (the "counters")
//	internal/simt      — SIMT GPU divergence/throughput model
//	internal/core      — taxonomy + workload registry
//	internal/harness   — one experiment per paper figure/table
//
// Quick start:
//
//	g := graphbig.Dataset("ldbc", 0.02, 42)
//	res, err := graphbig.Run("BFS", g, graphbig.Options{})
//
// See examples/ for complete programs and cmd/graphbig-bench for the
// experiment runner.
package graphbig

import (
	"github.com/graphbig/graphbig-go/internal/core"
	"github.com/graphbig/graphbig-go/internal/engine"
	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/harness"
	"github.com/graphbig/graphbig-go/internal/partition"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

// Graph is the vertex-centric dynamic property graph (see
// internal/property for the full framework API).
type Graph = property.Graph

// Vertex is a graph vertex; properties and outgoing edges live inside it.
type Vertex = property.Vertex

// Edge is one outgoing edge record.
type Edge = property.Edge

// VertexID identifies a vertex.
type VertexID = property.VertexID

// Options carries workload parameters (workers, source, samples, seed).
type Options = workloads.Options

// Result is a workload outcome.
type Result = workloads.Result

// Workload is a Table 4 registry entry.
type Workload = core.Workload

// Session caches datasets and simulator sweeps for experiments.
type Session = harness.Session

// View is an index-resolved snapshot of a graph: dense vertex indices plus
// flat CSR-like adjacency arrays that native hot loops iterate directly.
type View = property.View

// ViewOpts configures Graph.ViewWith: construction parallelism plus an
// optional locality ordering composed into the dense index space.
type ViewOpts = property.ViewOpts

// OrderFunc computes a vertex-reordering permutation (perm[new] = old)
// from a resolved CSR; internal/order provides degree, hub-clustering,
// RCM and cluster strategies.
type OrderFunc = property.OrderFunc

// PartitionPlan describes a k-way contiguous partitioning of a view's
// index space: per-partition vertex ranges, ownership, and the boundary
// vertices whose edges cross partitions. Build one by setting
// ViewOpts.Partitions; the engine then runs subgraph-centrically (one
// sequential kernel per partition, boundary exchange between supersteps)
// with results identical to flat execution.
type PartitionPlan = partition.Plan

// PartitionMode selects the partitioner's balance target (edge- or
// vertex-balanced contiguous chunking).
type PartitionMode = partition.Mode

// Engine is the unified direction-optimizing frontier engine; workload
// authors build traversals on it (see internal/engine).
type Engine = engine.Engine

// TraversalSpec configures one Engine.Traverse call.
type TraversalSpec = engine.Spec

// TraversalStats summarizes one Engine.Traverse call.
type TraversalStats = engine.Stats

// NewEngine returns a frontier engine over g's view; workers <= 0 selects
// GOMAXPROCS, and instrumented graphs always run single-threaded.
func NewEngine(g *Graph, vw *View, workers int) *Engine {
	return engine.New(g, vw, workers)
}

// New returns an empty undirected property graph.
func New() *Graph { return property.New(property.Options{}) }

// NewDirected returns an empty directed graph with in-edge tracking.
func NewDirected() *Graph {
	return property.New(property.Options{Directed: true, TrackInEdges: true})
}

// Dataset generates one of the five experiment datasets ("twitter",
// "knowledge", "watson-gene", "ca-road", "ldbc") at the given fraction of
// the paper-scale size. It panics on an unknown name; use gen.ByName for
// error handling.
func Dataset(name string, scale float64, seed int64) *Graph {
	d, err := gen.ByName(name)
	if err != nil {
		panic(err)
	}
	return d.Generate(scale, seed, 0)
}

// Workloads lists the Table 4 registry.
func Workloads() []Workload { return core.Workloads }

// Run executes the named CPU workload on g.
func Run(workload string, g *Graph, opt Options) (*Result, error) {
	wl, err := core.ByName(workload)
	if err != nil {
		return nil, err
	}
	return wl.Run(&core.RunContext{Graph: g, Opt: opt})
}

// NewSession returns an experiment session at the given dataset scale.
func NewSession(scale float64, seed int64) *Session {
	cfg := harness.DefaultConfig()
	cfg.Scale = scale
	cfg.Seed = seed
	return harness.NewSession(cfg)
}
