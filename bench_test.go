// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md §4): BenchmarkFigNN regenerates the data behind figure NN and
// reports its headline values as benchmark metrics, BenchmarkTable05
// regenerates the dataset inventory, and BenchmarkAblation* quantify the
// design choices DESIGN.md §5 calls out. Native wall-clock benchmarks for
// the workloads themselves follow at the bottom.
//
// The experiment benches share one cached session at a reduced scale so
// `go test -bench=.` completes on a laptop; run cmd/graphbig-bench with
// -scale for larger sweeps.
package graphbig_test

import (
	"sync"
	"testing"

	"github.com/graphbig/graphbig-go/internal/core"
	"github.com/graphbig/graphbig-go/internal/gen"
	"github.com/graphbig/graphbig-go/internal/harness"
	"github.com/graphbig/graphbig-go/internal/property"
	"github.com/graphbig/graphbig-go/internal/stats"
	"github.com/graphbig/graphbig-go/internal/workloads"
)

var (
	sessOnce sync.Once
	sess     *harness.Session
)

// benchSession returns the shared reduced-scale experiment session.
func benchSession() *harness.Session {
	sessOnce.Do(func() {
		cfg := harness.DefaultConfig()
		cfg.Scale = 0.004
		sess = harness.NewSession(cfg)
	})
	return sess
}

func runExperiment(b *testing.B, id string) harness.Report {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var r harness.Report
	for i := 0; i < b.N; i++ {
		r, err = e.Run(benchSession())
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkFig01Framework(b *testing.B) {
	runExperiment(b, "fig01")
	sweep, _ := benchSession().CPUSweep()
	var shares []float64
	for _, m := range sweep {
		shares = append(shares, m.FrameworkShare)
	}
	b.ReportMetric(stats.Mean(shares)*100, "framework-%")
}

func BenchmarkFig04UseCases(b *testing.B) { runExperiment(b, "fig04") }

func BenchmarkTable05Datasets(b *testing.B) {
	r := runExperiment(b, "tab05")
	b.ReportMetric(float64(len(r.Rows)), "datasets")
}

func BenchmarkFig05Breakdown(b *testing.B) {
	runExperiment(b, "fig05")
	sweep, _ := benchSession().CPUSweep()
	b.ReportMetric(sweep["kCore"].Backend*100, "kCore-backend-%")
	b.ReportMetric(sweep["TC"].Backend*100, "TC-backend-%")
}

func BenchmarkFig06CoreMetrics(b *testing.B) {
	runExperiment(b, "fig06")
	sweep, _ := benchSession().CPUSweep()
	b.ReportMetric(sweep["TC"].BranchMiss*100, "TC-brmiss-%")
	b.ReportMetric(sweep["BFS"].ICacheMPKI, "BFS-icache-mpki")
}

func BenchmarkFig07CacheMPKI(b *testing.B) {
	runExperiment(b, "fig07")
	sweep, _ := benchSession().CPUSweep()
	b.ReportMetric(sweep["DCentr"].L3MPKI, "DCentr-l3-mpki")
	b.ReportMetric(sweep["Gibbs"].L3MPKI, "Gibbs-l3-mpki")
}

func BenchmarkFig08ByType(b *testing.B) {
	runExperiment(b, "fig08")
	data, err := harness.Fig8Data(benchSession())
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range data {
		if d.Type == core.CompStruct {
			b.ReportMetric(d.L3MPKI, "CompStruct-l3-mpki")
		}
	}
}

func BenchmarkFig09DataSensitivity(b *testing.B) { runExperiment(b, "fig09") }

func BenchmarkFig10Divergence(b *testing.B) {
	r := runExperiment(b, "fig10")
	b.ReportMetric(float64(len(r.Rows)), "gpu-workloads")
}

func BenchmarkFig11Throughput(b *testing.B) { runExperiment(b, "fig11") }

func BenchmarkFig12Speedup(b *testing.B) {
	runExperiment(b, "fig12")
	data, err := harness.Fig12Data(benchSession())
	if err != nil {
		b.Fatal(err)
	}
	var best float64
	for _, d := range data {
		if d.Factor > best {
			best = d.Factor
		}
	}
	b.ReportMetric(best, "max-speedup-x")
}

func BenchmarkFig13DataDivergence(b *testing.B) { runExperiment(b, "fig13") }

// --- ablation benches (DESIGN.md §5) ---------------------------------------

func BenchmarkAblationLayout(b *testing.B) {
	var a harness.LayoutAblation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = benchSession().AblationLayout("ldbc")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.CSRL3MPKI, "csr-l3-mpki")
	b.ReportMetric(a.VertexL3MPKI, "vertex-l3-mpki")
}

func BenchmarkAblationKernelModel(b *testing.B) {
	var a harness.KernelModelAblation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = benchSession().AblationKernelModel("ldbc")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.ThreadBDR, "thread-bdr")
	b.ReportMetric(a.EdgeBDR, "edge-bdr")
}

func BenchmarkAblationFramework(b *testing.B) {
	var a harness.FrameworkAblation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = benchSession().AblationFramework("ldbc")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.Overhead, "framework-overhead-x")
}

func BenchmarkAblationICache(b *testing.B) {
	var a harness.ICacheAblation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = benchSession().AblationICache("ldbc")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.FlatMPKI, "flat-icache-mpki")
	b.ReportMetric(a.DeepMPKI, "deep-icache-mpki")
}

// --- native wall-clock workload benches -------------------------------------

var (
	natOnce  sync.Once
	natGraph *property.Graph
	natView  *property.View
)

func nativeGraph(b *testing.B) (*property.Graph, *property.View) {
	natOnce.Do(func() {
		natGraph = gen.LDBC(20000, 42, 0)
		natView = natGraph.View()
	})
	return natGraph, natView
}

func benchNative(b *testing.B, name string, opt workloads.Options) {
	g, vw := nativeGraph(b)
	wl, err := core.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	opt.View = vw
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		input := g
		o := opt
		if wl.Mutates {
			b.StopTimer()
			input = property.Clone(g)
			o.View = nil
			b.StartTimer()
		}
		if _, err := wl.Run(&core.RunContext{Graph: input, Opt: o}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(g.EdgeCount()) * 2 * 24) // edge records touched
}

func BenchmarkNativeBFS(b *testing.B)    { benchNative(b, "BFS", workloads.Options{}) }
func BenchmarkNativeDFS(b *testing.B)    { benchNative(b, "DFS", workloads.Options{}) }
func BenchmarkNativeSPath(b *testing.B)  { benchNative(b, "SPath", workloads.Options{}) }
func BenchmarkNativeKCore(b *testing.B)  { benchNative(b, "kCore", workloads.Options{}) }
func BenchmarkNativeCComp(b *testing.B)  { benchNative(b, "CComp", workloads.Options{}) }
func BenchmarkNativeGColor(b *testing.B) { benchNative(b, "GColor", workloads.Options{}) }
func BenchmarkNativeTC(b *testing.B)     { benchNative(b, "TC", workloads.Options{}) }
func BenchmarkNativeDCentr(b *testing.B) { benchNative(b, "DCentr", workloads.Options{}) }
func BenchmarkNativeBCentr(b *testing.B) {
	benchNative(b, "BCentr", workloads.Options{Samples: 4})
}
func BenchmarkNativeGCons(b *testing.B) { benchNative(b, "GCons", workloads.Options{}) }
func BenchmarkNativeGUp(b *testing.B)   { benchNative(b, "GUp", workloads.Options{}) }
func BenchmarkNativeTMorph(b *testing.B) {
	// TMorph builds a moral graph; run on the smaller road network to keep
	// iterations short.
	g := gen.Road(10000, 42, 0)
	vw := g.View()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workloads.TMorph(g, workloads.Options{View: vw}); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkNativeGibbs(b *testing.B) {
	net := benchSession().Bayes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workloads.Gibbs(net, workloads.Options{Samples: 5, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTraversal(b *testing.B) {
	var a harness.TraversalAblation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = benchSession().AblationTraversal("ldbc")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.Saving*100, "diropt-saving-%")
	b.ReportMetric(a.BottomUpLevels, "bottomup-levels")
}

// Extension workloads (beyond Table 4).
func BenchmarkNativeCCentr(b *testing.B) {
	benchNative(b, "CCentr", workloads.Options{Samples: 8})
}
func BenchmarkNativeBFSDirOpt(b *testing.B) {
	benchNative(b, "BFSDirOpt", workloads.Options{})
}
func BenchmarkNativeSPathDelta(b *testing.B) {
	benchNative(b, "SPathDelta", workloads.Options{})
}
func BenchmarkNativeCCompLP(b *testing.B) {
	benchNative(b, "CCompLP", workloads.Options{})
}

func BenchmarkAblationPrefetch(b *testing.B) {
	var a harness.PrefetchAblation
	var err error
	for i := 0; i < b.N; i++ {
		a, err = benchSession().AblationPrefetch("ldbc")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.StreamBaseMPKI, "dcentr-l2-mpki")
	b.ReportMetric(a.StreamPrefMPKI, "dcentr-l2-mpki-prefetch")
}
